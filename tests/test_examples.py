"""Smoke tests: the example scripts run end to end and print what they claim."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "Inconsistency measures" in output
    assert "I_lin_R" in output
    assert "optimal deletion repair" in output.lower()


def test_complexity_tour():
    output = run_example("complexity_tour.py")
    assert "NP-hard" in output
    assert "reduction verified: True" in output
    assert "integrality-gap bound = 2" in output


def test_reliability_report():
    output = run_example("reliability_report.py")
    assert "score/fact" in output
    assert "clean" in output


@pytest.mark.slow
def test_progress_indicator():
    output = run_example("progress_indicator.py")
    assert "Database is now consistent: True" in output


@pytest.mark.slow
def test_cleaning_case_study():
    output = run_example("cleaning_case_study.py")
    assert "Constraint order" in output
    assert "I_lin_R" in output


@pytest.mark.slow
def test_action_prioritization():
    output = run_example("action_prioritization.py")
    assert "Shapley blame" in output


@pytest.mark.slow
def test_warm_start_sweep():
    output = run_example("warm_start_sweep.py")
    assert "warm start restored: True" in output
    assert "series identical" in output
