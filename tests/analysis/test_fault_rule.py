"""The fault-registry rule: both directions of the registry cross-check."""

from __future__ import annotations

from repro.analysis.rules import FaultRegistryRule

from .util import findings_of, make_module

REGISTRY = "repro.testing.faults"


def registry_module(*points: str):
    listing = ", ".join(f'"{point}"' for point in points)
    return make_module(
        REGISTRY,
        f"REGISTERED_POINTS = frozenset({{{listing}}})\n",
    )


def rule() -> FaultRegistryRule:
    return FaultRegistryRule(registry_module=REGISTRY)


def drill_test(*points: str):
    body = "\n".join(f'    assert "{point}"' for point in points) or "    pass"
    return make_module(
        "test_drills",
        f"def test_drills():\n{body}\n",
        realm="tests",
        path="tests/test_drills.py",
    )


class TestRegistryDirections:
    def test_consistent_registry_is_clean(self):
        registry = registry_module("solver.deadline")
        user = make_module(
            "repro.solvers.anytime",
            """
            from repro.testing import faults

            def check():
                faults.trip("solver.deadline")
            """,
        )
        assert not findings_of(
            rule(), registry, user, drill_test("solver.deadline")
        )

    def test_unregistered_point_fires(self):
        registry = registry_module("solver.deadline")
        user = make_module(
            "repro.solvers.anytime",
            """
            from repro.testing import faults

            def check():
                faults.trip("solver.unknown")
            """,
        )
        findings = findings_of(rule(), registry, user)
        assert any(
            "'solver.unknown' is used but not registered" in finding.message
            for finding in findings
        )

    def test_stale_registry_entry_fires(self):
        registry = registry_module("solver.deadline", "ghost.point")
        user = make_module(
            "repro.solvers.anytime",
            'from repro.testing import faults\n\n'
            'def check():\n    faults.trip("solver.deadline")\n',
        )
        findings = findings_of(
            rule(), registry, user, drill_test("solver.deadline")
        )
        assert any("stale registry entry" in f.message for f in findings)

    def test_undrilled_point_fires(self):
        registry = registry_module("solver.deadline")
        user = make_module(
            "repro.solvers.anytime",
            'from repro.testing import faults\n\n'
            'def check():\n    faults.trip("solver.deadline")\n',
        )
        findings = findings_of(rule(), registry, user, drill_test())
        assert any(
            "referenced by no test" in finding.message for finding in findings
        )

    def test_missing_registry_constant_fires(self):
        registry = make_module(REGISTRY, "REGISTRY = {}\n")
        (finding,) = findings_of(rule(), registry)
        assert "no REGISTERED_POINTS" in finding.message


class TestConstantResolution:
    def test_local_constant_resolves(self):
        registry = registry_module("shard.fanout")
        user = make_module(
            "repro.session.sharding",
            """
            from repro.testing import faults

            FAULT_FANOUT = "shard.fanout"

            def forward():
                faults.trip(FAULT_FANOUT)
            """,
        )
        assert not findings_of(
            rule(), registry, user, drill_test("shard.fanout")
        )

    def test_constant_name_reference_counts_as_drill(self):
        registry = registry_module("shard.fanout")
        user = make_module(
            "repro.session.sharding",
            'from repro.testing import faults\n\n'
            'FAULT_FANOUT = "shard.fanout"\n\n'
            "def forward():\n    faults.trip(FAULT_FANOUT)\n",
        )
        # The test references the constant, not the literal string.
        drill = make_module(
            "test_drills",
            "from repro.session.sharding import FAULT_FANOUT\n\n"
            "def test_drill():\n    assert FAULT_FANOUT\n",
            realm="tests",
            path="tests/test_drills.py",
        )
        assert not findings_of(rule(), registry, user, drill)

    def test_unregistered_constant_fires(self):
        registry = registry_module("shard.fanout")
        user = make_module(
            "repro.session.sharding",
            'FAULT_OTHER = "shard.other"\n',
        )
        findings = findings_of(rule(), registry, user)
        assert any("FAULT_OTHER" in finding.message for finding in findings)

    def test_dynamic_point_argument_fires(self):
        registry = registry_module("shard.fanout")
        user = make_module(
            "repro.session.sharding",
            """
            from repro.testing import faults

            def forward(point):
                faults.trip(point + ".suffix")
            """,
        )
        findings = findings_of(rule(), registry, user)
        assert any(
            "statically resolvable" in finding.message for finding in findings
        )


class TestRuntimeRegistry:
    def test_real_registry_rejects_unregistered_arm(self):
        import pytest

        from repro.testing import faults

        with pytest.raises(ValueError, match="unregistered fault point"):
            with faults.inject("no.such.point"):
                pass

    def test_real_registry_rejects_unregistered_rate(self):
        import pytest

        from repro.testing import faults

        with pytest.raises(ValueError, match="unregistered fault point"):
            with faults.fault_plan(1, rates={"no.such.point": 0.5}):
                pass

    def test_test_prefix_is_exempt(self):
        from repro.testing import faults

        with faults.inject("test.anything"):
            assert not faults.fires("test.other")
