"""The preview-purity rule: call-graph reachability and write detection."""

from __future__ import annotations

from repro.analysis.rules import PreviewPurityRule

from .util import findings_of, make_module, surviving

SESSION = "repro.session.session"


def rule(**overrides) -> PreviewPurityRule:
    options = {
        "roots": (f"{SESSION}:MeasurementSession.speculate_batch",),
        "stop_edges": frozenset(
            {f"{SESSION}:MeasurementSession._speculation_base"}
        ),
    }
    options.update(overrides)
    return PreviewPurityRule(**options)


class TestDirectWrites:
    def test_write_in_root_fires(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self._cached = None
            """,
        )
        (finding,) = findings_of(rule(), module)
        assert "_cached" in finding.message
        assert "speculate_batch" in finding.message

    def test_write_in_self_callee_fires_with_chain(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self._score(deltas)

                def _score(self, deltas):
                    self.topology = None
            """,
        )
        (finding,) = findings_of(rule(), module)
        assert "MeasurementSession._score" in finding.message
        assert "speculate_batch" in finding.message  # reachability chain

    def test_unreachable_write_is_clean(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    return self._read(deltas)

                def _read(self, deltas):
                    return len(deltas)

                def commit(self):
                    self._cached = None
            """,
        )
        assert not findings_of(rule(), module)

    def test_unprotected_attribute_write_is_clean(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self._scratch = list(deltas)
            """,
        )
        assert not findings_of(rule(), module)

    def test_augmented_and_del_writes_fire(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self.generation += 1
                    del self.topology
            """,
        )
        assert len(findings_of(rule(), module)) == 2


class TestCallResolution:
    def test_stop_edge_not_descended(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self._speculation_base()

                def _speculation_base(self):
                    self._cached = None  # the documented pre-batch flush
            """,
        )
        assert not findings_of(rule(), module)

    def test_cross_module_function_call_resolves(self):
        helper = make_module(
            "repro.session.helper",
            """
            def merge(session):
                session._witnesses = {}
            """,
        )
        session = make_module(
            SESSION,
            """
            from repro.session.helper import merge

            class MeasurementSession:
                def speculate_batch(self, deltas):
                    merge(self)
            """,
        )
        (finding,) = findings_of(rule(), session, helper)
        assert finding.path == "repro/session/helper.py"

    def test_module_alias_call_resolves(self):
        helper = make_module(
            "repro.session.helper",
            """
            def merge(session):
                session._witnesses = {}
            """,
        )
        session = make_module(
            SESSION,
            """
            from repro.session import helper

            class MeasurementSession:
                def speculate_batch(self, deltas):
                    helper.merge(self)
            """,
        )
        assert findings_of(rule(), session, helper)

    def test_unknown_receiver_links_by_method_name(self):
        store = make_module(
            "repro.session.witnesses",
            """
            class WitnessStore:
                def rebuild(self):
                    self._ordered = None
            """,
        )
        session = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, store):
                    store.rebuild()
            """,
        )
        assert findings_of(rule(), session, store)

    def test_builtin_collection_names_not_linked(self):
        # ``.add`` on an unknown receiver must not wire the graph to an
        # unrelated class that happens to define ``add``.
        store = make_module(
            "repro.session.witnesses",
            """
            class WitnessStore:
                def add(self, witness):
                    self._ordered = None
            """,
        )
        session = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, seen):
                    seen.add(1)
            """,
        )
        assert not findings_of(rule(), session, store)

    def test_base_class_method_resolves(self):
        base = make_module(
            "repro.session.base",
            """
            class BaseSession:
                def _flush_now(self):
                    self._cached = None
            """,
        )
        session = make_module(
            SESSION,
            """
            from repro.session.base import BaseSession

            class MeasurementSession(BaseSession):
                def speculate_batch(self, deltas):
                    self._flush_now()
            """,
        )
        assert findings_of(rule(), session, base)

    def test_pragma_silences_write(self):
        module = make_module(
            SESSION,
            """
            class MeasurementSession:
                def speculate_batch(self, deltas):
                    self._cached = None  # repro: allow(preview-purity)
            """,
        )
        assert not surviving(rule(), module)


class TestRealTreeContract:
    def test_reintroducing_live_write_under_preview_fails(self):
        """The acceptance drill: a live-topology write under the real root
        names is caught with the shipped default configuration."""
        module = make_module(
            "repro.violations.topology",
            """
            class ComponentTopology:
                def preview(self, region):
                    self._components = set()  # purity violation
                    return region
            """,
        )
        (finding,) = findings_of(PreviewPurityRule(), module)
        assert "_components" in finding.message
