from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def repo_root() -> Path:
    root = Path(__file__).resolve().parents[2]
    assert (root / "src" / "repro").is_dir()
    return root
