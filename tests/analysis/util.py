"""In-memory fixture modules for exercising lint rules."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import Project, Rule, SourceModule
from repro.analysis.engine import run


def make_module(
    name: str,
    source: str,
    realm: str = "src",
    path: str | None = None,
) -> SourceModule:
    """Parse *source* into a module with a chosen dotted name and realm.

    Lets a test impersonate any module the manifest designates
    (``repro.session.session``, the fault registry, ...) without touching
    the real tree.
    """
    source = textwrap.dedent(source)
    display = path or name.replace(".", "/") + ".py"
    return SourceModule(
        path=Path(display),
        display_path=display,
        name=name,
        realm=realm,
        source=source,
        tree=ast.parse(source),
    )


def findings_of(rule: Rule, *modules: SourceModule):
    """Raw findings of one rule over fixture modules (no suppression)."""
    project = Project(list(modules))
    found = []
    for module in modules:
        found.extend(rule.check_module(module))
    found.extend(rule.finish(project))
    return found


def surviving(rule: Rule, *modules: SourceModule):
    """Findings after pragma suppression (what the CLI would report)."""
    return run(Project(list(modules)), [rule]).findings
