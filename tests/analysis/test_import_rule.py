"""The import-hygiene rule: eager/lazy placement and taint propagation."""

from __future__ import annotations

from repro.analysis.rules import ImportHygieneRule

from .util import findings_of, make_module, surviving

#: A manifest mirroring the real one, small enough to reason about.
DEPS = {
    "numpy": {
        "eager": frozenset({"repro.vec"}),
        "lazy": frozenset({"repro.probe"}),
    },
}


def rule() -> ImportHygieneRule:
    return ImportHygieneRule(dependencies=DEPS)


class TestDirectImports:
    def test_eager_numpy_outside_designated_fires(self):
        module = make_module("repro.core", "import numpy as np\n")
        (finding,) = findings_of(rule(), module)
        assert "eager import of optional dependency 'numpy'" in finding.message

    def test_eager_numpy_in_designated_module_is_clean(self):
        module = make_module("repro.vec", "import numpy as np\n")
        assert not findings_of(rule(), module)

    def test_lazy_numpy_in_designated_module_is_clean(self):
        module = make_module(
            "repro.probe",
            """
            def detect():
                import numpy
                return numpy
            """,
        )
        assert not findings_of(rule(), module)

    def test_lazy_numpy_outside_designated_fires(self):
        module = make_module(
            "repro.core",
            """
            def compute():
                import numpy as np
                return np.zeros(3)
            """,
        )
        (finding,) = findings_of(rule(), module)
        assert "lazy import" in finding.message

    def test_from_numpy_import_fires(self):
        module = make_module("repro.core", "from numpy import ndarray\n")
        assert findings_of(rule(), module)

    def test_type_checking_import_is_free(self):
        module = make_module(
            "repro.core",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                import numpy as np
            """,
        )
        assert not findings_of(rule(), module)

    def test_guarded_try_import_still_fires(self):
        # try/except at module level still executes at import time.
        module = make_module(
            "repro.core",
            """
            try:
                import numpy as np
            except ImportError:
                np = None
            """,
        )
        assert findings_of(rule(), module)


class TestTaintPropagation:
    def test_eager_import_of_gated_module_fires(self):
        vec = make_module("repro.vec", "import numpy as np\n")
        core = make_module("repro.core", "from repro.vec import kernel\n")
        findings = findings_of(rule(), vec, core)
        assert len(findings) == 1
        assert "'repro.vec'" in findings[0].message
        assert findings[0].path == "repro/core.py"

    def test_taint_propagates_transitively(self):
        vec = make_module("repro.vec", "import numpy as np\n")
        middle = make_module("repro.middle", "import repro.vec\n")
        outer = make_module("repro.outer", "from repro import middle\n")
        findings = findings_of(rule(), vec, middle, outer)
        paths = {finding.path for finding in findings}
        assert "repro/middle.py" in paths  # imports the gated home directly
        assert "repro/outer.py" in paths  # gated transitively

    def test_lazy_import_of_gated_module_is_clean(self):
        vec = make_module("repro.vec", "import numpy as np\n")
        core = make_module(
            "repro.core",
            """
            def backend():
                from repro.vec import kernel
                return kernel
            """,
        )
        assert not findings_of(rule(), vec, core)

    def test_relative_import_resolves(self):
        vec = make_module("repro.vec", "import numpy as np\n")
        core = make_module("repro.core", "from .vec import kernel\n")
        findings = findings_of(rule(), vec, core)
        assert len(findings) == 1
        assert findings[0].path == "repro/core.py"

    def test_one_finding_per_import_statement(self):
        vec = make_module("repro.vec", "import numpy as np\n")
        core = make_module("repro.core", "from .vec import a, b, c\n")
        assert len(findings_of(rule(), vec, core)) == 1


class TestTestsRealm:
    def test_eager_numpy_in_test_module_fires(self):
        module = make_module(
            "test_kernels",
            "import numpy as np\n",
            realm="tests",
            path="tests/test_kernels.py",
        )
        (finding,) = findings_of(rule(), module)
        assert "importorskip" in finding.message

    def test_importorskip_pattern_is_clean(self):
        module = make_module(
            "test_kernels",
            'import pytest\n\nnp = pytest.importorskip("numpy")\n',
            realm="tests",
            path="tests/test_kernels.py",
        )
        assert not findings_of(rule(), module)

    def test_pragma_silences_in_tests(self):
        module = make_module(
            "test_kernels",
            "import numpy as np  # repro: allow(import-hygiene)\n",
            realm="tests",
            path="tests/test_kernels.py",
        )
        assert not surviving(rule(), module)


class TestRealManifest:
    def test_real_designations_hold(self):
        # The shipped manifest allows exactly these placements.
        default = ImportHygieneRule()
        vec = make_module("repro.session.vectorized", "import numpy as np\n")
        probe = make_module(
            "repro.session.columnar",
            "def _detect():\n    import numpy\n    return numpy\n",
        )
        simplex = make_module(
            "repro.solvers.simplex",
            "def solve_lp(p):\n    import numpy as np\n    return np\n",
        )
        assert not findings_of(default, vec, probe, simplex)

    def test_scipy_never_allowed_in_src(self):
        default = ImportHygieneRule()
        module = make_module(
            "repro.solvers.simplex",
            "def check():\n    import scipy.optimize\n",
        )
        (finding,) = findings_of(default, module)
        assert "scipy" in finding.message
