"""Engine mechanics: collection, baselines, reporters, CLI plumbing."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, Project
from repro.analysis.cli import main
from repro.analysis.engine import collect, module_name_for, realm_for, run
from repro.analysis.rules import DeterminismRule, default_rules

from .util import make_module


class TestCollect:
    def test_package_module_names_and_realms(self, tmp_path: Path):
        package = tmp_path / "src" / "repro"
        (package / "sub").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "sub" / "__init__.py").write_text("")
        (package / "sub" / "mod.py").write_text("x = 1\n")
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_mod.py").write_text("y = 2\n")

        project = collect([tmp_path])
        names = {module.name: module.realm for module in project.modules}
        assert names["repro.sub.mod"] == "src"
        assert names["repro.sub"] == "src"  # the __init__ itself
        assert names["test_mod"] == "tests"

    def test_parse_error_reported_as_finding(self, tmp_path: Path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        project = collect([bad])
        assert not project.modules
        (finding,) = project.errors
        assert finding.rule == "parse-error"

    def test_module_name_outside_package_is_stem(self, tmp_path: Path):
        loose = tmp_path / "script.py"
        loose.write_text("z = 3\n")
        assert module_name_for(loose) == "script"
        assert realm_for(loose, "script", "repro") == "other"


class TestBaseline:
    def _finding(self, message: str, line: int = 1) -> Finding:
        return Finding(
            rule="determinism",
            path="repro/util.py",
            line=line,
            col=1,
            message=message,
        )

    def test_baselined_findings_are_swallowed(self):
        findings = [self._finding("bad thing")]
        baseline = Baseline.from_findings(findings)
        fresh, grandfathered = baseline.apply(findings)
        assert not fresh and len(grandfathered) == 1

    def test_extra_occurrences_beyond_count_are_fresh(self):
        baseline = Baseline.from_findings([self._finding("bad thing")])
        fresh, grandfathered = baseline.apply(
            [self._finding("bad thing", line=1), self._finding("bad thing", line=9)]
        )
        assert len(grandfathered) == 1 and len(fresh) == 1

    def test_key_is_line_independent(self):
        baseline = Baseline.from_findings([self._finding("bad thing", line=5)])
        fresh, _ = baseline.apply([self._finding("bad thing", line=500)])
        assert not fresh

    def test_round_trip(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self._finding("bad thing")]).dump(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1

    def test_version_mismatch_rejected(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_engine_applies_baseline(self):
        module = make_module("repro.util", "rows = sorted([], key=id)\n")
        rule = DeterminismRule()
        first = run(Project([module]), [rule])
        assert not first.clean
        baseline = Baseline.from_findings(first.findings)
        second = run(Project([module]), [rule], baseline=baseline)
        assert second.clean and len(second.baselined) == 1


class TestCli:
    def _write_bad_tree(self, tmp_path: Path) -> Path:
        package = tmp_path / "repro"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "util.py").write_text("rows = sorted([], key=id)\n")
        return tmp_path

    def test_exit_codes(self, tmp_path: Path, monkeypatch, capsys):
        root = self._write_bad_tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["repro"]) == 1
        (root / "repro" / "util.py").write_text("rows = sorted([])\n")
        assert main(["repro"]) == 0

    def test_json_format_shape(self, tmp_path: Path, monkeypatch, capsys):
        root = self._write_bad_tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["--format=json", "repro"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["path"] == "repro/util.py"
        assert finding["line"] == 1

    def test_write_and_use_baseline(self, tmp_path: Path, monkeypatch, capsys):
        root = self._write_bad_tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["--write-baseline", "base.json", "repro"]) == 0
        assert main(["--baseline", "base.json", "repro"]) == 0
        assert main(["--no-baseline", "repro"]) == 1

    def test_default_baseline_discovered(self, tmp_path: Path, monkeypatch, capsys):
        root = self._write_bad_tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["--write-baseline", ".repro-lint-baseline.json", "repro"]) == 0
        assert main(["repro"]) == 0

    def test_rules_subset_and_unknown(self, tmp_path: Path, monkeypatch, capsys):
        root = self._write_bad_tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["--rules", "import-hygiene", "repro"]) == 0
        with pytest.raises(SystemExit):
            main(["--rules", "no-such-rule", "repro"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.name in out

    def test_module_entry_point_runs(self, repo_root: Path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "determinism" in result.stdout
