"""The component-readset rule: locality of ``component_value``."""

from __future__ import annotations

from repro.analysis.rules import ComponentReadSetRule

from .util import findings_of, make_module


def measure_module(body: str):
    return make_module(
        "repro.measures.custom",
        f"""
        from repro.measures.base import ComponentwiseMeasure

        class CustomMeasure(ComponentwiseMeasure):
            def component_value(self, constraints, database, component):
        {body}
        """,
    )


class TestAllowedReads:
    def test_accessor_reads_are_clean(self):
        module = measure_module(
            "        return float(len(component.mi_sets) + "
            "len(component.problematic))"
        )
        assert not findings_of(ComponentReadSetRule(), module)

    def test_database_subscript_is_clean(self):
        module = measure_module(
            "        return sum(database[m].weight for m in "
            "sorted(component.problematic))"
        )
        assert not findings_of(ComponentReadSetRule(), module)

    def test_audited_helper_call_is_clean(self):
        module = make_module(
            "repro.measures.custom",
            """
            from repro.measures.base import ComponentwiseMeasure
            from repro.solvers import anytime

            class CustomMeasure(ComponentwiseMeasure):
                def component_value(self, constraints, database, component):
                    return anytime.solve_component(
                        self, constraints, database, component, lambda: 0.0
                    )
            """,
        )
        assert not findings_of(ComponentReadSetRule(), module)

    def test_same_class_method_propagation_clean_case(self):
        module = make_module(
            "repro.measures.custom",
            """
            from repro.measures.base import ComponentwiseMeasure

            class CustomMeasure(ComponentwiseMeasure):
                def component_value(self, constraints, database, component):
                    return self._count(component)

                def _count(self, component):
                    return float(len(component.mi_sets))
            """,
        )
        assert not findings_of(ComponentReadSetRule(), module)


class TestViolations:
    def test_off_contract_component_attribute_fires(self):
        module = measure_module("        return len(component.per_constraint)")
        (finding,) = findings_of(ComponentReadSetRule(), module)
        assert "per_constraint" in finding.message

    def test_database_attribute_read_fires(self):
        module = measure_module("        return float(len(database.facts))")
        (finding,) = findings_of(ComponentReadSetRule(), module)
        assert ".facts" in finding.message

    def test_unaudited_callee_fires(self):
        module = make_module(
            "repro.measures.custom",
            """
            from repro.measures.base import ComponentwiseMeasure
            from repro.util import sneak

            class CustomMeasure(ComponentwiseMeasure):
                def component_value(self, constraints, database, component):
                    return sneak(database)
            """,
        )
        (finding,) = findings_of(ComponentReadSetRule(), module)
        assert "unaudited callee 'sneak()'" in finding.message

    def test_aliasing_fires(self):
        module = measure_module(
            "        db = database\n        return 0.0"
        )
        (finding,) = findings_of(ComponentReadSetRule(), module)
        assert "aliasing" in finding.message

    def test_violation_through_propagated_method_fires(self):
        module = make_module(
            "repro.measures.custom",
            """
            from repro.measures.base import ComponentwiseMeasure

            class CustomMeasure(ComponentwiseMeasure):
                def component_value(self, constraints, database, component):
                    return self._peek(database)

                def _peek(self, database):
                    return float(len(database.facts))
            """,
        )
        (finding,) = findings_of(ComponentReadSetRule(), module)
        assert "_peek" in finding.symbol

    def test_transitive_subclass_is_checked(self):
        module = make_module(
            "repro.measures.custom",
            """
            from repro.measures.base import ComponentwiseMeasure

            class Parent(ComponentwiseMeasure):
                pass

            class Child(Parent):
                def component_value(self, constraints, database, component):
                    return float(len(database.facts))
            """,
        )
        assert findings_of(ComponentReadSetRule(), module)

    def test_non_componentwise_class_not_checked(self):
        module = make_module(
            "repro.measures.custom",
            """
            class Unrelated:
                def component_value(self, constraints, database, component):
                    return float(len(database.facts))
            """,
        )
        assert not findings_of(ComponentReadSetRule(), module)

    def test_constraints_parameter_unrestricted(self):
        module = measure_module(
            "        return float(len([c.lowered for c in constraints]))"
        )
        assert not findings_of(ComponentReadSetRule(), module)
