"""The determinism rule: fires on bad snippets, stays quiet on clean ones."""

from __future__ import annotations

from repro.analysis.rules import DeterminismRule

from .util import findings_of, make_module, surviving

CRITICAL = "repro.session.session"  # any manifest bit-critical module


class TestIdSortKey:
    def test_sorted_by_id_fires(self):
        module = make_module(
            "repro.util",
            """
            def order(items):
                return sorted(items, key=id)
            """,
        )
        (finding,) = findings_of(DeterminismRule(), module)
        assert "id()-based sort key" in finding.message

    def test_lambda_id_key_fires(self):
        module = make_module(
            "repro.util",
            """
            def order(items):
                items.sort(key=lambda item: (id(item), item))
            """,
        )
        assert findings_of(DeterminismRule(), module)

    def test_fires_in_tests_realm_too(self):
        module = make_module(
            "test_order",
            "rows = sorted([], key=id)\n",
            realm="tests",
            path="tests/test_order.py",
        )
        assert findings_of(DeterminismRule(), module)

    def test_id_as_dict_key_is_clean(self):
        module = make_module(
            "repro.util",
            """
            def memo(items):
                return {id(item): item for item in items}
            """,
        )
        assert not findings_of(DeterminismRule(), module)

    def test_content_key_is_clean(self):
        module = make_module(
            "repro.util",
            "def order(items):\n    return sorted(items, key=len)\n",
        )
        assert not findings_of(DeterminismRule(), module)


class TestSetConsumption:
    def test_list_over_set_fires_in_critical_module(self):
        module = make_module(
            CRITICAL,
            "def emit(facts):\n    return list({f for f in facts})\n",
        )
        (finding,) = findings_of(DeterminismRule(), module)
        assert "hash order" in finding.message

    def test_sum_over_set_fires(self):
        module = make_module(
            CRITICAL,
            "def total(parts):\n    return sum(set(parts))\n",
        )
        assert findings_of(DeterminismRule(), module)

    def test_sum_genexp_over_set_fires(self):
        module = make_module(
            CRITICAL,
            "def total(parts):\n    return sum(p.value for p in set(parts))\n",
        )
        assert findings_of(DeterminismRule(), module)

    def test_keyed_min_over_set_fires(self):
        module = make_module(
            CRITICAL,
            "def pick(xs):\n    return min({x for x in xs}, key=str)\n",
        )
        assert findings_of(DeterminismRule(), module)

    def test_unkeyed_min_over_set_is_clean(self):
        # Total order on the elements themselves: no tie to break.
        module = make_module(
            CRITICAL,
            "def pick(xs):\n    return min({x for x in xs})\n",
        )
        assert not findings_of(DeterminismRule(), module)

    def test_for_over_set_fires(self):
        module = make_module(
            CRITICAL,
            """
            def walk(xs):
                for x in {x for x in xs}:
                    yield x
            """,
        )
        assert findings_of(DeterminismRule(), module)

    def test_sorted_iteration_is_clean(self):
        module = make_module(
            CRITICAL,
            """
            def walk(xs):
                for x in sorted({x for x in xs}):
                    yield x
            """,
        )
        assert not findings_of(DeterminismRule(), module)

    def test_non_critical_module_not_checked(self):
        module = make_module(
            "repro.experiments.report",
            "def emit(facts):\n    return list({f for f in facts})\n",
        )
        assert not findings_of(DeterminismRule(), module)


class TestRandomAndClock:
    def test_global_random_fires_in_src(self):
        module = make_module(
            "repro.util",
            "import random\n\ndef roll():\n    return random.random()\n",
        )
        (finding,) = findings_of(DeterminismRule(), module)
        assert "unseeded" in finding.message

    def test_seeded_instance_is_clean(self):
        module = make_module(
            "repro.util",
            """
            import random

            def roll(seed):
                return random.Random(seed).random()
            """,
        )
        assert not findings_of(DeterminismRule(), module)

    def test_global_random_allowed_in_tests(self):
        module = make_module(
            "test_roll",
            "import random\nvalue = random.random()\n",
            realm="tests",
            path="tests/test_roll.py",
        )
        assert not findings_of(DeterminismRule(), module)

    def test_wall_clock_fires_outside_timing_modules(self):
        module = make_module(
            "repro.util",
            "import time\n\ndef stamp():\n    return time.perf_counter()\n",
        )
        (finding,) = findings_of(DeterminismRule(), module)
        assert "wall-clock" in finding.message

    def test_wall_clock_allowed_in_designated_module(self):
        module = make_module(
            "repro.solvers.anytime",
            "import time\n\ndef now():\n    return time.monotonic()\n",
        )
        assert not findings_of(DeterminismRule(), module)

    def test_datetime_now_fires(self):
        module = make_module(
            "repro.util",
            "import datetime\n\ndef stamp():\n    return datetime.datetime.now()\n",
        )
        assert findings_of(DeterminismRule(), module)


class TestPragma:
    def test_pragma_on_line_silences(self):
        module = make_module(
            "repro.util",
            "rows = sorted([], key=id)  # repro: allow(determinism)\n",
        )
        assert not surviving(DeterminismRule(), module)

    def test_pragma_on_line_above_silences(self):
        module = make_module(
            "repro.util",
            "# repro: allow(determinism)\nrows = sorted([], key=id)\n",
        )
        assert not surviving(DeterminismRule(), module)

    def test_wildcard_pragma_silences(self):
        module = make_module(
            "repro.util",
            "rows = sorted([], key=id)  # repro: allow(*)\n",
        )
        assert not surviving(DeterminismRule(), module)

    def test_wrong_rule_pragma_does_not_silence(self):
        module = make_module(
            "repro.util",
            "rows = sorted([], key=id)  # repro: allow(import-hygiene)\n",
        )
        assert surviving(DeterminismRule(), module)
