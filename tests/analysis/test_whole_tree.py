"""Whole-tree conformance: the shipped tree is lint-clean, regressions fail.

The first half is the gate itself: running every rule over the real
``src``/``tests`` tree must produce zero non-baselined findings (the
shipped baseline is empty — the CI lint job runs exactly this).  The
second half drills the acceptance scenarios: deliberately re-introducing
each class of violation against the *real* manifest must fail.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Project, collect, run
from repro.analysis.rules import default_rules

from .util import make_module


class TestRealTree:
    def test_zero_findings_with_empty_baseline(self, repo_root: Path):
        project = collect([repo_root / "src", repo_root / "tests"])
        assert len(project.modules) > 150  # sanity: the real tree loaded
        result = run(project, default_rules())
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.clean, f"lint regressions:\n{rendered}"

    def test_real_tree_has_no_parse_errors(self, repo_root: Path):
        project = collect([repo_root / "src", repo_root / "tests"])
        assert not project.errors


def _real_tree_plus(repo_root: Path, *extra) -> Project:
    project = collect([repo_root / "src", repo_root / "tests"])
    return Project(project.modules + list(extra))


class TestAcceptanceDrills:
    """Each contract violation, re-introduced, turns the gate red."""

    def test_eager_numpy_import_fails(self, repo_root: Path):
        bad = make_module(
            "repro.solvers.fresh_kernel", "import numpy as np\n"
        )
        result = run(_real_tree_plus(repo_root, bad), default_rules())
        assert any(
            f.rule == "import-hygiene" and "numpy" in f.message
            for f in result.findings
        )

    def test_live_topology_write_under_preview_fails(self, repo_root: Path):
        bad = make_module(
            "repro.session.patch",
            """
            def leak(session, topology):
                topology._component_of = {}
            """,
        )
        # Shadows the real session module: extras come after the real tree,
        # so this MeasurementSession.speculate_batch (a preview root) wins.
        hook = make_module(
            "repro.session.session",
            """
            from repro.session.patch import leak

            class MeasurementSession:
                def speculate_batch(self, deltas):
                    leak(self, self.topology)
            """,
        )
        result = run(_real_tree_plus(repo_root, bad, hook), default_rules())
        assert any(
            f.rule == "preview-purity" and "_component_of" in f.message
            for f in result.findings
        )

    def test_unregistered_fault_point_fails(self, repo_root: Path):
        bad = make_module(
            "repro.session.fresh_path",
            """
            from repro.testing import faults

            def risky():
                faults.trip("fresh.unregistered")
            """,
        )
        result = run(_real_tree_plus(repo_root, bad), default_rules())
        assert any(
            f.rule == "fault-registry" and "fresh.unregistered" in f.message
            for f in result.findings
        )

    def test_off_contract_component_read_fails(self, repo_root: Path):
        bad = make_module(
            "repro.measures.fresh_measure",
            """
            from repro.measures.base import ComponentwiseMeasure

            class FreshMeasure(ComponentwiseMeasure):
                def component_value(self, constraints, database, component):
                    return float(len(database.facts))
            """,
        )
        result = run(_real_tree_plus(repo_root, bad), default_rules())
        assert any(
            f.rule == "component-readset" for f in result.findings
        )

    def test_id_sort_key_on_critical_path_fails(self, repo_root: Path):
        bad = make_module(
            "repro.session.fresh_order",
            "def order(parts):\n    return sorted(parts, key=id)\n",
        )
        result = run(_real_tree_plus(repo_root, bad), default_rules())
        assert any(f.rule == "determinism" for f in result.findings)
