"""Unit tests for CSV import/export."""

import io

import pytest

from repro.relational import Schema
from repro.relational.csvio import dump_csv, load_csv, read_csv, write_csv


def test_read_roundtrip():
    text = "A,B,C\n1,hello,2.5\n,world,3\n"
    db = read_csv(io.StringIO(text), "R")
    assert len(db) == 2
    assert db.get_cell(0, "A") == 1
    assert db.get_cell(1, "A") is None
    assert db.get_cell(0, "C") == 2.5

    out = io.StringIO()
    write_csv(db, "R", out)
    assert out.getvalue().replace("\r\n", "\n") == text


def test_read_with_declared_schema():
    schema = Schema.from_dict({"R": ["A", "B"]})
    db = read_csv(io.StringIO("A,B\n1,2\n"), "R", schema=schema)
    assert db.schema is schema


def test_header_mismatch_rejected():
    schema = Schema.from_dict({"R": ["A", "B"]})
    with pytest.raises(ValueError, match="does not match"):
        read_csv(io.StringIO("X,Y\n1,2\n"), "R", schema=schema)


def test_empty_stream_rejected():
    with pytest.raises(ValueError, match="empty"):
        read_csv(io.StringIO(""), "R")


def test_file_roundtrip(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("A,B\nx,1\ny,2\n")
    db = load_csv(path, "T")
    assert db.column("T", "B") == [1, 2]
    out_path = tmp_path / "out.csv"
    dump_csv(db, "T", out_path)
    assert out_path.read_text() == path.read_text()
