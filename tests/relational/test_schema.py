"""Unit tests for schemas and signatures."""

import pytest

from repro.relational.schema import RelationSignature, Schema, SchemaError


class TestRelationSignature:
    def test_arity(self):
        sig = RelationSignature("R", ("A", "B"))
        assert sig.arity == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", ("A", "A"))

    def test_empty_signature_rejected(self):
        with pytest.raises(SchemaError):
            RelationSignature("R", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSignature("", ("A",))

    def test_index_of(self):
        sig = RelationSignature("R", ("A", "B", "C"))
        assert sig.index_of("B") == 1

    def test_index_of_unknown_raises(self):
        sig = RelationSignature("R", ("A",))
        with pytest.raises(SchemaError, match="no attribute"):
            sig.index_of("Z")

    def test_has_attribute(self):
        sig = RelationSignature("R", ("A",))
        assert sig.has_attribute("A")
        assert not sig.has_attribute("B")


class TestSchema:
    def test_from_dict(self):
        schema = Schema.from_dict({"R": ["A"], "S": ["B", "C"]})
        assert len(schema) == 2
        assert schema.signature("S").arity == 2

    def test_duplicate_relation_rejected(self):
        schema = Schema.from_dict({"R": ["A"]})
        with pytest.raises(SchemaError, match="already defined"):
            schema.add_relation("R", ["B"])

    def test_unknown_relation_raises(self):
        schema = Schema.from_dict({"R": ["A"]})
        with pytest.raises(SchemaError, match="unknown relation"):
            schema.signature("X")

    def test_contains(self):
        schema = Schema.from_dict({"R": ["A"]})
        assert "R" in schema
        assert "X" not in schema

    def test_relation_names_order(self):
        schema = Schema.from_dict({"B": ["X"], "A": ["Y"]})
        assert schema.relation_names() == ["B", "A"]

    def test_iteration(self):
        schema = Schema.from_dict({"R": ["A"], "S": ["B"]})
        assert [sig.name for sig in schema] == ["R", "S"]
