"""Unit tests for value typing and active domains."""

from repro.relational.values import (
    ActiveDomain,
    coerce_value,
    is_null,
    render_value,
    values_comparable,
)


class TestCoercion:
    def test_empty_string_is_null(self):
        assert coerce_value("") is None

    def test_integer(self):
        assert coerce_value("42") == 42
        assert isinstance(coerce_value("42"), int)

    def test_negative_integer(self):
        assert coerce_value("-7") == -7

    def test_float(self):
        assert coerce_value("3.25") == 3.25

    def test_string_passthrough(self):
        assert coerce_value("Key West") == "Key West"

    def test_roundtrip(self):
        for text in ("42", "3.5", "hello", ""):
            assert render_value(coerce_value(text)) == text

    def test_render_none(self):
        assert render_value(None) == ""


class TestComparability:
    def test_null_never_comparable(self):
        assert not values_comparable(None, 1)
        assert not values_comparable("a", None)

    def test_mixed_numeric(self):
        assert values_comparable(1, 2.5)

    def test_string_string(self):
        assert values_comparable("a", "b")

    def test_string_number_incomparable(self):
        assert not values_comparable("a", 1)

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestActiveDomain:
    def test_frequency_ranking(self):
        domain = ActiveDomain(["a", "b", "a", "c", "a", "b"])
        assert domain.values_by_frequency() == ["a", "b", "c"]

    def test_membership(self):
        domain = ActiveDomain(["x"])
        assert "x" in domain
        assert "y" not in domain

    def test_nulls_ignored(self):
        domain = ActiveDomain([None, "a", None])
        assert len(domain) == 1
        assert domain.total() == 1

    def test_discard_decrements(self):
        domain = ActiveDomain(["a", "a"])
        domain.discard("a")
        assert domain.frequency("a") == 1
        domain.discard("a")
        assert "a" not in domain

    def test_discard_absent_is_noop(self):
        domain = ActiveDomain(["a"])
        domain.discard("zzz")
        assert domain.frequency("a") == 1

    def test_tie_break_deterministic(self):
        domain = ActiveDomain(["b", "a"])
        assert domain.values_by_frequency() == ["a", "b"]
