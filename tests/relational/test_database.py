"""Unit tests for the Database id→fact mapping and its mutations."""

import pytest

from repro.relational import Database, Fact, Schema, SchemaError


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


class TestConstruction:
    def test_from_rows_assigns_consecutive_ids(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (3, 4)])
        assert db.ids() == [0, 1]

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            Database.from_rows(schema, "R", [(1, 2, 3)])

    def test_duplicate_facts_get_distinct_ids(self, schema):
        db = Database.from_facts(schema, [Fact("R", (1, 1)), Fact("R", (1, 1))])
        assert len(db) == 2
        assert db[0] == db[1]


class TestMutations:
    def test_insert_uses_minimal_free_id(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2), (3, 3)])
        db.delete(1)
        new_id = db.insert(Fact("R", (9, 9)))
        assert new_id == 1

    def test_delete_missing_returns_false(self, schema):
        db = Database(schema)
        assert db.delete(5) is False

    def test_update_changes_value(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        assert db.update(0, "B", 99)
        assert db.get_cell(0, "B") == 99

    def test_update_missing_id_returns_false(self, schema):
        db = Database(schema)
        assert db.update(0, "A", 1) is False

    def test_update_unknown_attribute_returns_false(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        assert db.update(0, "Z", 1) is False

    def test_update_maintains_active_domain(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (1, 3)])
        db.update(0, "A", 7)
        domain = db.active_domain("R", "A")
        assert domain.frequency(1) == 1
        assert domain.frequency(7) == 1

    def test_delete_maintains_active_domain(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        db.delete(0)
        assert 1 not in db.active_domain("R", "A")


class TestViews:
    def test_subset_keeps_identifiers(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2), (3, 3)])
        sub = db.subset([0, 2])
        assert sub.ids() == [0, 2]
        assert sub[2] == db[2]

    def test_subset_unknown_id_raises(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1)])
        with pytest.raises(KeyError):
            db.subset([5])

    def test_without(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        assert db.without([0]).ids() == [1]

    def test_is_subset_of(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        assert db.subset([0]).is_subset_of(db)
        assert not db.is_subset_of(db.subset([0]))

    def test_is_subset_requires_same_fact_per_id(self, schema):
        db1 = Database.from_rows(schema, "R", [(1, 1)])
        db2 = Database.from_rows(schema, "R", [(2, 2)])
        assert not db1.is_subset_of(db2)

    def test_copy_is_independent(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1)])
        clone = db.copy()
        clone.update(0, "A", 5)
        assert db.get_cell(0, "A") == 1

    def test_copy_preserves_domains(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (1, 2)])
        clone = db.copy()
        assert clone.active_domain("R", "A").frequency(1) == 2

    def test_column(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (3, 4)])
        assert db.column("R", "B") == [2, 4]

    def test_equality(self, schema):
        db1 = Database.from_rows(schema, "R", [(1, 1)])
        db2 = Database.from_rows(schema, "R", [(1, 1)])
        assert db1 == db2
        db2.update(0, "A", 9)
        assert db1 != db2


class TestFact:
    def test_get_by_attribute(self, schema):
        fact = Fact("R", (10, 20))
        assert fact.get(schema.signature("R"), "B") == 20

    def test_with_value_is_functional(self, schema):
        fact = Fact("R", (10, 20))
        updated = fact.with_value(schema.signature("R"), "A", 99)
        assert fact.values == (10, 20)
        assert updated.values == (99, 20)

    def test_hashable(self):
        assert len({Fact("R", (1,)), Fact("R", (1,))}) == 1
