"""Unit tests for the Database id→fact mapping and its mutations."""

import pytest

from repro.relational import Database, Fact, Schema, SchemaError
from repro.relational.database import ChangeEvent


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


class TestConstruction:
    def test_from_rows_assigns_consecutive_ids(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (3, 4)])
        assert db.ids() == [0, 1]

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            Database.from_rows(schema, "R", [(1, 2, 3)])

    def test_duplicate_facts_get_distinct_ids(self, schema):
        db = Database.from_facts(schema, [Fact("R", (1, 1)), Fact("R", (1, 1))])
        assert len(db) == 2
        assert db[0] == db[1]


class TestMutations:
    def test_insert_uses_minimal_free_id(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2), (3, 3)])
        db.delete(1)
        new_id = db.insert(Fact("R", (9, 9)))
        assert new_id == 1

    def test_delete_missing_returns_false(self, schema):
        db = Database(schema)
        assert db.delete(5) is False

    def test_update_changes_value(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        assert db.update(0, "B", 99)
        assert db.get_cell(0, "B") == 99

    def test_update_missing_id_returns_false(self, schema):
        db = Database(schema)
        assert db.update(0, "A", 1) is False

    def test_update_unknown_attribute_returns_false(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        assert db.update(0, "Z", 1) is False

    def test_update_maintains_active_domain(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (1, 3)])
        db.update(0, "A", 7)
        domain = db.active_domain("R", "A")
        assert domain.frequency(1) == 1
        assert domain.frequency(7) == 1

    def test_delete_maintains_active_domain(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2)])
        db.delete(0)
        assert 1 not in db.active_domain("R", "A")


class TestViews:
    def test_subset_keeps_identifiers(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2), (3, 3)])
        sub = db.subset([0, 2])
        assert sub.ids() == [0, 2]
        assert sub[2] == db[2]

    def test_subset_unknown_id_raises(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1)])
        with pytest.raises(KeyError):
            db.subset([5])

    def test_without(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        assert db.without([0]).ids() == [1]

    def test_is_subset_of(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        assert db.subset([0]).is_subset_of(db)
        assert not db.is_subset_of(db.subset([0]))

    def test_is_subset_requires_same_fact_per_id(self, schema):
        db1 = Database.from_rows(schema, "R", [(1, 1)])
        db2 = Database.from_rows(schema, "R", [(2, 2)])
        assert not db1.is_subset_of(db2)

    def test_copy_is_independent(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1)])
        clone = db.copy()
        clone.update(0, "A", 5)
        assert db.get_cell(0, "A") == 1

    def test_copy_preserves_domains(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (1, 2)])
        clone = db.copy()
        assert clone.active_domain("R", "A").frequency(1) == 2

    def test_column(self, schema):
        db = Database.from_rows(schema, "R", [(1, 2), (3, 4)])
        assert db.column("R", "B") == [2, 4]

    def test_equality(self, schema):
        db1 = Database.from_rows(schema, "R", [(1, 1)])
        db2 = Database.from_rows(schema, "R", [(1, 1)])
        assert db1 == db2
        db2.update(0, "A", 9)
        assert db1 != db2


class TestSavepointEdgeCases:
    """Nested-savepoint ordering under subscriber churn.

    Shards and sessions are plain change-feed subscribers, so attaching or
    detaching one mid-savepoint must compose with rollback like any other
    listener: a subscriber observes exactly the events committed while it
    was attached — including the inverse events a rollback replays.
    """

    def test_listener_attached_mid_savepoint_sees_the_full_undo(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        events: list[ChangeEvent] = []
        with db.savepoint():
            db.update(0, "B", 9)
            db.subscribe(events.append)  # a shard attaching mid-savepoint
            db.delete(1)
        # The late subscriber saw the delete it was attached for, then the
        # whole undo newest-first: restore of fact 1, un-update of fact 0.
        assert [(e.action, e.identifier) for e in events] == [
            ("delete", 1),
            ("insert", 1),
            ("update", 0),
        ]
        assert events[-1].new == Fact("R", (1, 1))  # pre-image reinstated
        db.unsubscribe(events.append)

    def test_listener_detached_mid_savepoint_misses_the_undo(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1)])
        events: list[ChangeEvent] = []
        db.subscribe(events.append)
        with db.savepoint():
            db.update(0, "B", 9)
            db.unsubscribe(events.append)  # a shard detaching mid-savepoint
            db.update(0, "A", 7)
        assert [(e.action, e.identifier) for e in events] == [("update", 0)]
        assert db[0] == Fact("R", (1, 1))  # rollback still ran fully

    def test_listener_unsubscribing_during_rollback_is_safe(self, schema):
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2)])
        seen: list[str] = []

        def churn(event: ChangeEvent) -> None:
            seen.append(event.action)
            db.unsubscribe(churn)  # detach on the first replayed inverse

        with db.savepoint():
            db.delete(0)
            db.delete(1)
            db.subscribe(churn)
        assert seen == ["insert"]  # got exactly one event, no corruption
        assert db.ids() == [0, 1]  # the remaining inverses still replayed

    def test_inner_release_inside_outer_rollback(self, schema):
        """Released-inner changes are still undone by the outer journal."""
        db = Database.from_rows(schema, "R", [(1, 1)])
        with db.savepoint():
            db.update(0, "A", 5)
            with db.savepoint() as inner:
                db.insert(Fact("R", (7, 7)))
                inner.release()  # keep the insert past the inner exit
            assert len(db) == 2  # release really kept it
        # The outer journal recorded the inner's events directly, so its
        # rollback undoes them in global newest-first order.
        assert db.ids() == [0]
        assert db[0] == Fact("R", (1, 1))

    def test_inner_rollback_then_outer_release(self, schema):
        """An undone inner stays undone when the outer keeps its changes."""
        db = Database.from_rows(schema, "R", [(1, 1)])
        with db.savepoint() as outer:
            db.update(0, "B", 9)
            with db.savepoint():
                db.update(0, "B", 3)  # inner change, rolled back at exit
            outer.release()
        assert db[0] == Fact("R", (1, 9))

    def test_interleaved_nesting_restores_identifiers(self, schema):
        """Deletes/inserts across nesting levels unwind newest-first."""
        db = Database.from_rows(schema, "R", [(1, 1), (2, 2), (3, 3)])
        facts_before = dict(db._facts)
        with db.savepoint():
            db.delete(0)
            with db.savepoint() as inner:
                db.insert(Fact("R", (9, 9)))  # reuses identifier 0
                db.delete(2)
                inner.release()
            db.insert(Fact("R", (8, 8)))  # reuses identifier 2
        assert db._facts == facts_before
        assert db.peek_next_id() == 3

    def test_sharded_session_attach_detach_mid_savepoint(self, schema):
        """A measurement session is a subscriber like any other.

        Attached mid-savepoint it absorbs the rollback's inverse events as
        ordinary deltas and converges to the pre-savepoint state; detached
        mid-savepoint it goes stale and refresh() recovers.
        """
        from repro.constraints import FunctionalDependency
        from repro.session import ShardedMeasurementSession
        from repro.violations import build_violation_index

        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        db = Database.from_rows(schema, "R", [(1, 1), (1, 2), (2, 5)])
        with db.savepoint():
            db.update(2, "A", 1)
            attached = ShardedMeasurementSession(constraints, db)
            assert len(attached.index().mi_sets) == 3
            detached = ShardedMeasurementSession(constraints, db)
            db.update(0, "B", 2)
            detached.close()
            db.insert(Fact("R", (1, 7)))
        full = build_violation_index(constraints, db)
        assert attached.index().mi_sets == full.mi_sets
        assert len(attached.index().mi_sets) == 1
        attached.close()
        assert detached.refresh().mi_sets == full.mi_sets


class TestFact:
    def test_get_by_attribute(self, schema):
        fact = Fact("R", (10, 20))
        assert fact.get(schema.signature("R"), "B") == 20

    def test_with_value_is_functional(self, schema):
        fact = Fact("R", (10, 20))
        updated = fact.with_value(schema.signature("R"), "A", 99)
        assert fact.values == (10, 20)
        assert updated.values == (99, 20)

    def test_hashable(self):
        assert len({Fact("R", (1,)), Fact("R", (1,))}) == 1
