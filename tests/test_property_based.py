"""Property-based tests (hypothesis) on core invariants.

These encode the paper's formal guarantees as executable laws over random
databases and constraint sets:

* a measure is zero iff the database is consistent (positivity + the zero
  requirement of Section 3);
* ``I_lin_R ≤ I_R ≤ width · I_lin_R`` (LP bound and integrality gap);
* ``I_R`` monotonicity under constraint strengthening (superset of FDs);
* deletion of any fact never increases ``I_MI`` / ``I_P`` / ``I_R`` for
  anti-monotonic constraints;
* the half-integral vertex-cover LP equals the generic simplex on the same
  instance;
* minimal inconsistent subsets really are minimal and inconsistent.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import FunctionalDependency
from repro.measures import make_measure
from repro.relational import Database, Schema
from repro.repairs import minimum_subset_repair, repair_lp_relaxation
from repro.solvers.halfintegral import vertex_cover_lp
from repro.solvers.simplex import LpProblem, Sense, solve_lp
from repro.solvers.vertex_cover import greedy_hitting_set, minimum_hitting_set
from repro.violations import build_violation_index, is_consistent

SCHEMA = Schema.from_dict({"R": ["A", "B", "C"]})

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=0,
    max_size=9,
)

fd_strategy = st.sampled_from(
    [
        [FunctionalDependency("R", {"A"}, {"B"})],
        [FunctionalDependency("R", {"A"}, {"B", "C"})],
        [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
        ],
    ]
)

common = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build_db(rows) -> Database:
    return Database.from_rows(SCHEMA, "R", rows)


@common
@given(rows=rows_strategy, fds=fd_strategy)
def test_measures_zero_iff_consistent(rows, fds):
    db = build_db(rows)
    consistent = is_consistent(fds, db)
    for name in ("I_d", "I_MI", "I_P", "I_R", "I_lin_R"):
        value = make_measure(name).value(fds, db)
        if consistent:
            assert value == 0.0, name
        else:
            assert value > 0.0, name


@common
@given(rows=rows_strategy, fds=fd_strategy)
def test_lp_sandwich(rows, fds):
    db = build_db(rows)
    index = build_violation_index(fds, db)
    lp, _ = repair_lp_relaxation(fds, db, index=index)
    ilp = minimum_subset_repair(fds, db, index=index).cost
    width = max(index.max_width, 1)
    assert lp <= ilp + 1e-9
    assert ilp <= width * lp + 1e-9


@common
@given(rows=rows_strategy)
def test_ir_monotone_under_stricter_constraints(rows):
    db = build_db(rows)
    weaker = [FunctionalDependency("R", {"A"}, {"B"})]
    stronger = weaker + [FunctionalDependency("R", {"B"}, {"C"})]
    ir = make_measure("I_R")
    assert ir.value(weaker, db) <= ir.value(stronger, db) + 1e-9


@common
@given(rows=rows_strategy, fds=fd_strategy)
def test_deletion_never_increases_measures(rows, fds):
    db = build_db(rows)
    if not len(db):
        return
    index = build_violation_index(fds, db)
    values = {
        name: make_measure(name).value(fds, db, index)
        for name in ("I_MI", "I_P", "I_R")
    }
    victim = db.ids()[0]
    smaller = db.without([victim])
    for name, before in values.items():
        after = make_measure(name).value(fds, smaller)
        assert after <= before + 1e-9, name


@common
@given(rows=rows_strategy, fds=fd_strategy)
def test_mi_sets_are_minimal_and_inconsistent(rows, fds):
    db = build_db(rows)
    index = build_violation_index(fds, db)
    for group in index.mi_sets:
        sub = db.subset(group)
        assert not is_consistent(fds, sub)
        for fact_id in group:
            assert is_consistent(fds, sub.without([fact_id]))


@common
@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=14,
    )
)
def test_halfintegral_matches_simplex(edges):
    normalized = sorted({(min(u, v), max(u, v)) for u, v in edges})
    vertices = sorted({v for edge in normalized for v in edge})
    value, x = vertex_cover_lp(vertices, normalized)
    assert all(
        frac in (Fraction(0), Fraction(1, 2), Fraction(1)) for frac in x.values()
    )
    position = {v: i for i, v in enumerate(vertices)}
    problem = LpProblem(
        num_vars=len(vertices), objective={i: 1.0 for i in range(len(vertices))}
    )
    for u, v in normalized:
        problem.add_row({position[u]: 1.0, position[v]: 1.0}, Sense.GE, 1.0)
    reference = solve_lp(problem)
    assert value == pytest.approx(reference.objective, abs=1e-7)


@common
@given(
    sets=st.lists(
        st.frozensets(st.integers(min_value=0, max_value=6), min_size=1, max_size=3),
        min_size=1,
        max_size=8,
    )
)
def test_hitting_set_invariants(sets):
    value, cover = minimum_hitting_set(sets)
    assert all(group & cover for group in sets)
    greedy = greedy_hitting_set(sets)
    assert value <= len(greedy) + 1e-9
    # Optimal cover weight equals its cardinality under unit weights.
    assert value == pytest.approx(float(len(cover)))


@common
@given(rows=rows_strategy, fds=fd_strategy)
def test_violation_index_idempotent(rows, fds):
    db = build_db(rows)
    first = build_violation_index(fds, db).mi_sets
    second = build_violation_index(fds, db).mi_sets
    assert first == second
