"""Failure-injection and degenerate-input robustness tests."""

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.measures import make_measure
from repro.noise import CONoise, RNoise
from repro.relational import Database, Schema
from repro.repairs import minimum_subset_repair, minimum_update_repair
from repro.violations import build_violation_index, is_consistent

MEASURES = ("I_d", "I_MI", "I_P", "I_MC", "I'_MC", "I_R", "I_lin_R")


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


class TestEmptyDatabase:
    def test_all_measures_zero(self, schema):
        db = Database(schema)
        fd = FunctionalDependency("R", {"A"}, {"B"})
        for name in MEASURES:
            assert make_measure(name).value([fd], db) == 0.0, name

    def test_repairs_trivial(self, schema):
        db = Database(schema)
        fd = FunctionalDependency("R", {"A"}, {"B"})
        assert minimum_subset_repair([fd], db).cost == 0.0
        assert minimum_update_repair([fd], db).cost == 0.0

    def test_noise_no_crash(self, schema):
        db = Database(schema)
        fd = FunctionalDependency("R", {"A"}, {"B"})
        CONoise([fd], seed=1).run(db, 5)
        RNoise([fd], alpha=0.5, seed=1).run(db, 5)
        assert len(db) == 0


class TestEmptyConstraintSet:
    def test_everything_consistent(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        assert is_consistent([], db)
        for name in ("I_d", "I_MI", "I_P", "I_R", "I_lin_R"):
            assert make_measure(name).value([], db) == 0.0, name

    def test_imc_is_zero(self, schema):
        # MC family is the singleton {D}: I_MC = 0.
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        assert make_measure("I_MC").value([], db) == 0.0


class TestSingleFactDatabase:
    def test_fd_cannot_be_violated(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        fd = FunctionalDependency("R", {"A"}, {"B"})
        assert is_consistent([fd], db)

    def test_unary_dc_can_be_violated(self, schema):
        db = Database.from_rows(schema, "R", [(5, 1)])
        dc = parse_dc("not(t.A > t.B)", "R")
        index = build_violation_index([dc], db)
        assert index.mi_sets == [frozenset({0})]
        # The only repair deletes the single fact.
        assert minimum_subset_repair([dc], db).deleted_ids == {0}


class TestNullValues:
    def test_nulls_never_violate_fds(self, schema):
        db = Database.from_rows(schema, "R", [(None, "x"), (None, "y")])
        fd = FunctionalDependency("R", {"A"}, {"B"})
        # NULL = NULL is false in our (SQL-like) semantics.
        assert is_consistent([fd], db)

    def test_nulls_never_violate_order_dcs(self, schema):
        db = Database.from_rows(schema, "R", [(None, 5), (3, None)])
        dc = parse_dc("not(t.A > t.B)", "R")
        assert is_consistent([dc], db)

    def test_measures_handle_nulls(self, schema):
        db = Database.from_rows(schema, "R", [(None, "x"), (1, "y"), (1, "z")])
        fd = FunctionalDependency("R", {"A"}, {"B"})
        assert make_measure("I_MI").value([fd], db) == 1.0


class TestMixedTypeColumns:
    def test_string_and_number_never_compare(self, schema):
        db = Database.from_rows(schema, "R", [("high", 5), (3, "low")])
        dc = parse_dc("not(t.A > t.B)", "R")
        assert is_consistent([dc], db)

    def test_equality_across_types_is_false(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x"), ("1", "y")])
        fd = FunctionalDependency("R", {"A"}, {"B"})
        # int 1 != str "1": no shared key, no violation.
        assert is_consistent([fd], db)


class TestCrossRelationConstraints:
    def test_dc_spanning_two_relations(self):
        schema = Schema.from_dict({"R": ["A"], "S": ["A"]})
        from repro.constraints import ComparisonOp, DenialConstraint, Predicate, Term
        from repro.relational import Fact

        dc = DenialConstraint(
            [("t", "R"), ("s", "S")],
            [Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("s", "A"))],
            name="no_shared_values",
        )
        db = Database(schema)
        db.insert(Fact("R", (1,)))
        db.insert(Fact("S", (1,)))
        db.insert(Fact("S", (2,)))
        index = build_violation_index([dc], db)
        assert index.mi_sets == [frozenset({0, 1})]
        repair = minimum_subset_repair([dc], db)
        assert repair.cost == 1.0
