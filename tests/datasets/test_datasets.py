"""Tests for the dataset registry and the eight generators."""

import pytest

from repro.constraints.base import overlap_ratios
from repro.datasets import DATASET_ORDER, DATASETS, generate_sample, get_dataset
from repro.violations import is_consistent


class TestRegistry:
    def test_eight_datasets(self):
        assert len(DATASETS) == 8
        assert set(DATASET_ORDER) == set(DATASETS)

    def test_case_insensitive_lookup(self):
        assert get_dataset("tax").name == "Tax"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("Nope")

    def test_figure3_attribute_counts(self):
        expected = {
            "Stock": 7,
            "Hospital": 15,
            "Food": 17,
            "Airport": 9,
            "Adult": 15,
            "Flight": 20,
            "Voter": 22,
            "Tax": 15,
        }
        for name, count in expected.items():
            assert get_dataset(name).num_attributes == count, name

    def test_figure3_constraint_counts(self):
        expected = {
            "Stock": 6,
            "Hospital": 7,
            "Food": 6,
            "Airport": 6,
            "Adult": 3,
            "Flight": 13,
            "Voter": 5,
            "Tax": 9,
        }
        for name, count in expected.items():
            assert get_dataset(name).num_constraints == count, name

    def test_paper_tuple_counts(self):
        assert get_dataset("Tax").paper_tuples == 1_000_000
        assert get_dataset("Voter").paper_tuples == 950_000

    def test_sample_size_env(self, monkeypatch):
        from repro.datasets.registry import default_sample_size

        monkeypatch.setenv("REPRO_SCALE", "2")
        assert default_sample_size(1000) == 2000
        monkeypatch.delenv("REPRO_SCALE")
        assert default_sample_size(1000) == 1000


@pytest.mark.parametrize("name", list(DATASETS))
class TestGenerators:
    def test_initially_consistent(self, name):
        db, constraints = generate_sample(name, 150, seed=2)
        assert len(db) == 150
        assert is_consistent(constraints, db)

    def test_deterministic(self, name):
        db1, _ = generate_sample(name, 40, seed=9)
        db2, _ = generate_sample(name, 40, seed=9)
        assert db1 == db2

    def test_seeds_differ(self, name):
        db1, _ = generate_sample(name, 40, seed=1)
        db2, _ = generate_sample(name, 40, seed=2)
        assert db1 != db2

    def test_arity_matches_spec(self, name):
        spec = get_dataset(name)
        db, _ = generate_sample(name, 10, seed=0)
        for identifier in db.ids():
            assert db[identifier].arity == spec.num_attributes

    def test_constraints_have_names(self, name):
        _, constraints = generate_sample(name, 10, seed=0)
        names = [c.name for c in constraints]
        assert len(set(names)) == len(names)

    def test_overlap_ratios_well_formed(self, name):
        constraints = get_dataset(name).make_constraints()
        ratios = overlap_ratios(constraints)
        assert len(ratios) == len(constraints)
        assert all(0.0 <= r <= 1.0 for r in ratios)
