"""Cross-dataset integration: noise models × measures on every dataset."""

import pytest

from repro.datasets import DATASETS, generate_sample
from repro.measures import make_measure
from repro.noise import CONoise, RNoise
from repro.violations import build_violation_index


@pytest.mark.parametrize("name", list(DATASETS))
class TestCONoisePerDataset:
    def test_conoise_creates_measurable_inconsistency(self, name):
        db, constraints = generate_sample(name, 100, seed=70)
        CONoise(constraints, seed=71).run(db, 8)
        index = build_violation_index(constraints, db)
        assert not index.is_consistent(), name
        lin = make_measure("I_lin_R").value(constraints, db, index)
        exact = make_measure("I_R").value(constraints, db, index)
        assert 0 < lin <= exact + 1e-9

    def test_rnoise_respects_alpha(self, name):
        db, constraints = generate_sample(name, 100, seed=72)
        noise = RNoise(constraints, alpha=0.05, seed=73)
        planned = noise.total_iterations(db)
        before = [db[i] for i in db.ids()]
        noise.run(db)
        after = [db[i] for i in db.ids()]
        changed = sum(1 for b, a in zip(before, after) if b != a)
        # At most `planned` facts can change (each step touches one cell).
        assert 0 < changed <= planned, name

    def test_problematic_subset_of_ids(self, name):
        db, constraints = generate_sample(name, 80, seed=74)
        CONoise(constraints, seed=75).run(db, 5)
        index = build_violation_index(constraints, db)
        assert index.problematic <= set(db.ids()), name
