"""Tests for the property checkers and all paper counterexamples (Table 2)."""

import pytest

from repro.measures import make_measure
from repro.properties import (
    TABLE2_DC,
    TABLE2_FD,
    Property,
    best_improvement,
    check_monotonicity,
    check_positivity,
    check_progression,
    continuity_ratio,
    counterexamples as cx,
)
from repro.repairs import DeleteOperation, subset_system, update_system
from repro.violations import is_consistent


class TestPositivity:
    @pytest.mark.parametrize("name", ["I_d", "I_MI", "I_P", "I'_MC", "I_R", "I_lin_R"])
    def test_satisfied_on_fd_example(self, name, airport_example):
        constraints, _, d1, _ = airport_example
        assert check_positivity(make_measure(name), constraints, d1) is None

    def test_imc_violates_for_dcs(self):
        constraints, db = cx.imc_positivity_dc()
        violation = check_positivity(make_measure("I_MC"), constraints, db)
        assert violation is not None
        assert violation.property_name == "positivity"

    def test_imc_prime_repairs_the_violation(self):
        constraints, db = cx.imc_positivity_dc()
        assert check_positivity(make_measure("I'_MC"), constraints, db) is None

    def test_consistent_database_vacuous(self, airport_example):
        constraints, d0, _, _ = airport_example
        assert check_positivity(make_measure("I_MC"), constraints, d0) is None


class TestMonotonicity:
    def test_proposition1_imi(self):
        weaker, stronger, db = cx.imi_monotonicity_dc()
        violation = check_monotonicity(make_measure("I_MI"), weaker, stronger, db)
        assert violation is not None

    def test_proposition1_ip(self):
        sigma1, sigma12, db, _ = cx.ip_monotonicity_dc()
        violation = check_monotonicity(make_measure("I_P"), sigma1, sigma12, db)
        assert violation is not None

    def test_proposition2_imc(self):
        sigma1, sigma2, db = cx.imc_monotonicity_fd()
        imc = make_measure("I_MC")
        assert imc.value(sigma1, db) == 3.0
        assert imc.value(sigma2, db) == 1.0
        assert check_monotonicity(imc, sigma1, sigma2, db) is not None

    @pytest.mark.parametrize("name", ["I_d", "I_R", "I_lin_R"])
    def test_satisfied_by_rational_measures_on_prop2_input(self, name):
        sigma1, sigma2, db = cx.imc_monotonicity_fd()
        assert check_monotonicity(make_measure(name), sigma1, sigma2, db) is None

    @pytest.mark.parametrize("name", ["I_MI", "I_P"])
    def test_fd_monotonicity_holds(self, name):
        # For FDs (Table 2) I_MI and I_P are monotone; Prop 2's input is FDs.
        sigma1, sigma2, db = cx.imc_monotonicity_fd()
        assert check_monotonicity(make_measure(name), sigma1, sigma2, db) is None


class TestProgression:
    @pytest.mark.parametrize("name", ["I_MI", "I_P", "I_R", "I_lin_R"])
    def test_satisfied_under_deletions(self, name, airport_example):
        constraints, _, d1, _ = airport_example
        assert check_progression(make_measure(name), constraints, d1) is None

    def test_drastic_violates(self, airport_example):
        constraints, _, d1, _ = airport_example
        violation = check_progression(make_measure("I_d"), constraints, d1)
        assert violation is not None

    def test_example7_imc_stuck(self):
        constraints, db = cx.imc_progression_fd()
        violation = check_progression(make_measure("I_MC"), constraints, db)
        assert violation is not None

    def test_example10_updates_stall_imi(self):
        constraints, db = cx.update_progression_mi()
        system = update_system()
        for name in ("I_MI", "I_P"):
            violation = check_progression(
                make_measure(name), constraints, db, system
            )
            assert violation is not None, name

    def test_example10_deletion_still_progresses(self):
        constraints, db = cx.update_progression_mi()
        assert (
            check_progression(make_measure("I_MI"), constraints, db, subset_system())
            is None
        )

    def test_ir_progresses_under_updates(self):
        constraints, db = cx.update_progression_mi()
        assert (
            check_progression(
                make_measure("I_R_upd"), constraints, db, update_system()
            )
            is None
        )


class TestContinuity:
    def test_proposition4_ratio_grows(self):
        ratios = []
        for n in (3, 6):
            constraints, db, f0 = cx.continuity_family(n)
            operation = DeleteOperation(f0)
            after = operation.apply(db)
            ratio = continuity_ratio(
                make_measure("I_MI"), constraints, (db, operation), after
            )
            ratios.append(ratio)
        assert ratios[0] == pytest.approx(3.0)
        assert ratios[1] == pytest.approx(6.0)
        assert ratios[1] > ratios[0]

    def test_proposition4_ip_ratio(self):
        constraints, db, f0 = cx.continuity_family(4)
        operation = DeleteOperation(f0)
        ratio = continuity_ratio(
            make_measure("I_P"), constraints, (db, operation), operation.apply(db)
        )
        assert ratio == pytest.approx((4 + 1) / 2)

    def test_ir_ratio_bounded_by_one(self):
        constraints, db, f0 = cx.continuity_family(5)
        operation = DeleteOperation(f0)
        ratio = continuity_ratio(
            make_measure("I_R"), constraints, (db, operation), operation.apply(db)
        )
        assert ratio <= 1.0 + 1e-9

    def test_best_improvement_finds_f0(self):
        constraints, db, f0 = cx.continuity_family(4)
        delta, operation = best_improvement(make_measure("I_MI"), constraints, db)
        assert delta == pytest.approx(4.0)
        assert operation == DeleteOperation(f0)


class TestExample11:
    def test_no_single_update_decreases_violations(self):
        constraints, db = cx.update_progression_violations()
        imi = make_measure("I_MI")
        system = update_system()
        violation = check_progression(imi, constraints, db, system)
        assert violation is not None

    def test_database_shape(self):
        constraints, db = cx.update_progression_violations()
        assert not is_consistent(constraints, db)
        assert len(db) == 4


class TestTable2Data:
    def test_ilinr_satisfies_everything(self):
        for table in (TABLE2_FD, TABLE2_DC):
            assert all(table["I_lin_R"].values())

    def test_ir_all_but_ptime(self):
        for table in (TABLE2_FD, TABLE2_DC):
            row = table["I_R"]
            assert row[Property.PTIME] is False
            assert all(v for k, v in row.items() if k is not Property.PTIME)

    def test_dc_column_weaker_than_fd(self):
        # Moving from FDs to DCs can only lose properties, never gain.
        for name, fd_row in TABLE2_FD.items():
            for prop, fd_value in fd_row.items():
                assert TABLE2_DC[name][prop] <= fd_value
