"""Tests for the weighted continuity checker and Theorem 2's guarantee."""

import pytest

from repro.measures import make_measure
from repro.properties import counterexamples as cx
from repro.properties.checker import weighted_continuity_ratio
from repro.repairs import DeleteOperation, subset_system, table_cost
from repro.relational import Database, Schema
from repro.constraints import FunctionalDependency


class TestWeightedContinuity:
    def test_ilinr_ratio_bounded_by_mi_width(self):
        # Theorem 2: I_lin_R satisfies δ-weighted-continuity with δ = d_Σ
        # (the max atoms per DC; 2 for FDs).
        constraints, db, f0 = cx.continuity_family(5)
        operation = DeleteOperation(f0)
        ratio = weighted_continuity_ratio(
            make_measure("I_lin_R"),
            constraints,
            (db, operation),
            operation.apply(db),
        )
        assert ratio <= 2.0 + 1e-9

    def test_imi_ratio_unbounded(self):
        ratios = []
        for n in (3, 6):
            constraints, db, f0 = cx.continuity_family(n)
            operation = DeleteOperation(f0)
            ratios.append(
                weighted_continuity_ratio(
                    make_measure("I_MI"),
                    constraints,
                    (db, operation),
                    operation.apply(db),
                )
            )
        assert ratios[1] > ratios[0]
        assert ratios[1] == pytest.approx(6.0)

    def test_costs_enter_the_ratio(self):
        # Same instance, but the impactful operation is expensive: its
        # per-cost delta shrinks, so the weighted ratio drops.
        constraints, db, f0 = cx.continuity_family(4)
        operation = DeleteOperation(f0)
        after = operation.apply(db)
        cheap = weighted_continuity_ratio(
            make_measure("I_MI"), constraints, (db, operation), after
        )
        expensive_system = subset_system(cost=table_cost({f0: 8.0}))
        weighted = weighted_continuity_ratio(
            make_measure("I_MI"),
            constraints,
            (db, operation),
            after,
            system=expensive_system,
        )
        assert weighted < cheap

    def test_consistent_target_gives_inf_or_one(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        dirty = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        clean = Database.from_rows(schema, "R", [(1, "x")])
        fd = FunctionalDependency("R", {"A"}, {"B"})
        ratio = weighted_continuity_ratio(
            make_measure("I_MI"),
            [fd],
            (dirty, DeleteOperation(0)),
            clean,
        )
        assert ratio == float("inf")
