"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import run


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "cities.csv"
    path.write_text(
        "Name,Country\nParis,FR\nParis,DE\nLyon,FR\nBerlin,DE\n",
        encoding="utf-8",
    )
    return path


def invoke(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_fd_flag(self, csv_file):
        code, text = invoke(
            [str(csv_file), "--relation", "R", "--fd", "R: Name -> Country"]
        )
        assert code == 0
        assert "facts: 4" in text
        assert "minimal inconsistent subsets: 1" in text
        assert "I_MI = 1.0" in text

    def test_dc_flag(self, tmp_path):
        path = tmp_path / "stock.csv"
        path.write_text("High,Low\n5,10\n10,5\n", encoding="utf-8")
        code, text = invoke(
            [str(path), "--dc", "not(t.High < t.Low)", "--measures", "I_d", "I_R"]
        )
        assert code == 0
        assert "I_d = 1.0" in text
        assert "I_R = 1.0" in text

    def test_constraints_file(self, csv_file, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# geography rules\nfd: R: Name -> Country\n\n", encoding="utf-8"
        )
        code, text = invoke(
            [str(csv_file), "--relation", "R", "--constraints", str(rules)]
        )
        assert code == 0
        assert "constraints: 1" in text

    def test_bad_rule_kind_rejected(self, csv_file, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("xx: nonsense\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="fd:"):
            invoke([str(csv_file), "--constraints", str(rules)])

    def test_no_constraints_rejected(self, csv_file):
        with pytest.raises(SystemExit, match="no constraints"):
            invoke([str(csv_file)])

    def test_top_violations(self, csv_file):
        code, text = invoke(
            [
                str(csv_file),
                "--relation",
                "R",
                "--fd",
                "R: Name -> Country",
                "--top-violations",
                "2",
            ]
        )
        assert code == 0
        assert "Shapley blame" in text
        assert "blame=0.500" in text

    def test_warm_start_round_trip(self, csv_file, tmp_path):
        snap = tmp_path / "state.snap"
        argv = [
            str(csv_file),
            "--relation",
            "R",
            "--fd",
            "R: Name -> Country",
            "--warm-start",
            str(snap),
        ]
        code, cold_text = invoke(argv)
        assert code == 0
        assert "warm start: cold build" in cold_text
        assert snap.exists()
        code, warm_text = invoke(argv)
        assert code == 0
        assert "warm start: restored" in warm_text
        # Identical measurements either way (modulo the warm-start line).
        strip = lambda text: [
            line
            for line in text.splitlines()
            if not line.startswith("warm start:")
        ]
        assert strip(warm_text) == strip(cold_text)

    def test_warm_start_stale_data_rebuilds_cold(self, csv_file, tmp_path):
        snap = tmp_path / "state.snap"
        argv = [
            str(csv_file),
            "--relation",
            "R",
            "--fd",
            "R: Name -> Country",
            "--warm-start",
            str(snap),
        ]
        invoke(argv)
        csv_file.write_text(
            "Name,Country\nParis,FR\nParis,DE\nLyon,FR\nLyon,DE\n",
            encoding="utf-8",
        )
        code, text = invoke(argv)
        assert code == 0
        assert "warm start: cold build" in text
        assert "minimal inconsistent subsets: 2" in text

    def test_warm_start_corrupt_file_rebuilds_cold(self, csv_file, tmp_path):
        snap = tmp_path / "state.snap"
        snap.write_bytes(b"junk that is not a snapshot")
        code, text = invoke(
            [
                str(csv_file),
                "--relation",
                "R",
                "--fd",
                "R: Name -> Country",
                "--warm-start",
                str(snap),
            ]
        )
        assert code == 0
        assert "warm start: cold build" in text
        assert "I_MI = 1.0" in text

    def test_warm_start_unreadable_path_rebuilds_cold(
        self, csv_file, tmp_path
    ):
        snap_dir = tmp_path / "a-directory"
        snap_dir.mkdir()
        code, text = invoke(
            [
                str(csv_file),
                "--relation",
                "R",
                "--fd",
                "R: Name -> Country",
                "--warm-start",
                str(snap_dir),
            ]
        )
        assert code == 0
        assert "warm start: cold build" in text
        assert "warm start: could not save state" in text
        assert "I_MI = 1.0" in text


class TestStatsFlag:
    def test_stats_prints_session_counters(self, csv_file):
        code, text = invoke(
            [
                str(csv_file),
                "--relation",
                "R",
                "--fd",
                "R: Name -> Country",
                "--measures",
                "I_MI",
                "--stats",
            ]
        )
        assert code == 0
        assert "I_MI = 1.0" in text
        assert '"engine"' in text
        assert '"vector_backend"' in text
        # Without a warm-start path the session is stats-only: no
        # snapshot chatter, no state file expected.
        assert "warm start:" not in text

    def test_stats_composes_with_warm_start(self, csv_file, tmp_path):
        snap = tmp_path / "state.snap"
        code, text = invoke(
            [
                str(csv_file),
                "--relation",
                "R",
                "--fd",
                "R: Name -> Country",
                "--warm-start",
                str(snap),
                "--stats",
            ]
        )
        assert code == 0
        assert "warm start: cold build" in text
        assert '"engine"' in text
        assert snap.exists()
