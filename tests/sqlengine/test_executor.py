"""Unit and integration tests for SQL execution."""

import pytest

from repro.relational import Database, Schema
from repro.sqlengine import SqlEngine, SqlSyntaxError


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ["St", "Salary", "Tax"], "S": ["St", "Code"]})
    database = Database.from_rows(
        schema,
        "R",
        [
            ("NY", 100, 10),
            ("NY", 200, 5),
            ("CA", 50, 1),
            ("NY", 150, 20),
            ("CA", 80, 2),
        ],
    )
    for row in [("NY", 1), ("CA", 2)]:
        from repro.relational import Fact

        database.insert(Fact("S", row))
    return database


@pytest.fixture
def engine(db):
    return SqlEngine(db)


class TestScans:
    def test_select_star(self, engine):
        rows = engine.execute("SELECT * FROM R")
        assert len(rows) == 5
        assert rows[0][0] == 0  # identifier first

    def test_filter(self, engine):
        rows = engine.execute("SELECT R.ID FROM R WHERE R.St = 'CA'")
        assert sorted(rows) == [(2,), (4,)]

    def test_count(self, engine):
        assert engine.execute("SELECT COUNT(*) FROM R WHERE R.Salary > 90") == [(3,)]

    def test_constant_comparison_types(self, engine):
        rows = engine.execute("SELECT R.ID FROM R WHERE R.Tax <= 2")
        assert sorted(rows) == [(2,), (4,)]


class TestJoins:
    PAPER_QUERY = (
        "SELECT DISTINCT R1.ID, R2.ID FROM R AS R1, R AS R2 "
        "WHERE R1.St = R2.St AND R1.Salary > R2.Salary AND R1.Tax < R2.Tax"
    )

    def test_paper_conflict_query(self, engine):
        # (1) 200/5 vs (0) 100/10 and vs (3) 150/20: salary greater, tax less.
        assert sorted(engine.execute(self.PAPER_QUERY)) == [(1, 0), (1, 3)]

    def test_hash_and_nested_agree(self, db):
        fast = SqlEngine(db).execute(self.PAPER_QUERY)
        slow = SqlEngine(db, force_nested_loop=True).execute(self.PAPER_QUERY)
        assert sorted(fast) == sorted(slow)

    def test_cross_relation_join(self, engine):
        rows = engine.execute(
            "SELECT R.ID, S.Code FROM R, S WHERE R.St = S.St AND R.Salary > 90"
        )
        assert sorted(rows) == [(0, 1), (1, 1), (3, 1)]

    def test_pure_cross_product(self, engine):
        rows = engine.execute("SELECT R.ID, S.ID FROM R, S")
        assert len(rows) == 10

    def test_distinct_dedupes(self, engine):
        rows = engine.execute("SELECT DISTINCT R.St FROM R")
        assert sorted(rows) == [("CA",), ("NY",)]

    def test_or_in_join(self, engine):
        rows = engine.execute(
            "SELECT DISTINCT R1.ID FROM R AS R1, R AS R2 "
            "WHERE R1.St = R2.St AND (R1.Salary > 180 OR R1.Tax > 15)"
        )
        assert sorted(rows) == [(1,), (3,)]


class TestNullSemantics:
    def test_null_never_joins(self):
        schema = Schema.from_dict({"T": ["A"]})
        db = Database.from_rows(schema, "T", [(None,), (1,), (1,)])
        rows = SqlEngine(db).execute(
            "SELECT T1.ID, T2.ID FROM T AS T1, T AS T2 "
            "WHERE T1.A = T2.A AND T1.ID < T2.ID"
        )
        assert rows == [(1, 2)]

    def test_null_comparison_false(self):
        schema = Schema.from_dict({"T": ["A"]})
        db = Database.from_rows(schema, "T", [(None,), (5,)])
        rows = SqlEngine(db).execute("SELECT T.ID FROM T WHERE T.A < 10")
        assert rows == [(1,)]


class TestErrors:
    def test_unknown_relation(self, engine):
        with pytest.raises(SqlSyntaxError, match="unknown relation"):
            engine.execute("SELECT * FROM Nope")

    def test_unknown_column(self, engine):
        with pytest.raises(Exception):
            engine.execute("SELECT R.Bogus FROM R")
