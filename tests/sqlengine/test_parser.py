"""Unit tests for the SQL parser."""

import pytest

from repro.constraints.base import ComparisonOp
from repro.sqlengine.ast import (
    And,
    ColumnRef,
    Comparison,
    CountStar,
    Literal,
    Or,
    conjuncts,
)
from repro.sqlengine.parser import parse_query
from repro.sqlengine.tokens import SqlSyntaxError


class TestSelectList:
    def test_distinct_columns(self):
        q = parse_query("SELECT DISTINCT R1.ID, R2.ID FROM R AS R1, R AS R2")
        assert q.distinct
        assert q.select == (ColumnRef("R1", "ID"), ColumnRef("R2", "ID"))

    def test_star(self):
        q = parse_query("SELECT * FROM R")
        assert q.select_star

    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM R")
        assert q.is_aggregate()
        assert isinstance(q.select[0], CountStar)


class TestFromClause:
    def test_alias_with_as(self):
        q = parse_query("SELECT * FROM R AS R1")
        assert q.tables[0].relation == "R"
        assert q.tables[0].alias == "R1"

    def test_alias_without_as(self):
        q = parse_query("SELECT * FROM R R1")
        assert q.tables[0].alias == "R1"

    def test_default_alias_is_relation(self):
        q = parse_query("SELECT * FROM R")
        assert q.tables[0].alias == "R"

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(SqlSyntaxError, match="duplicate"):
            parse_query("SELECT * FROM R AS X, S AS X")


class TestWhereClause:
    def test_comparison_operators(self):
        q = parse_query("SELECT * FROM R WHERE R.A <= 5")
        comparison = q.where
        assert isinstance(comparison, Comparison)
        assert comparison.op is ComparisonOp.LE
        assert comparison.right == Literal(5)

    def test_and_conjunction(self):
        q = parse_query("SELECT * FROM R WHERE R.A = 1 AND R.B = 2 AND R.C = 3")
        assert isinstance(q.where, And)
        assert len(conjuncts(q.where)) == 3

    def test_comma_as_and(self):
        # The paper writes WHERE clauses with commas between predicates.
        q = parse_query("SELECT * FROM R WHERE R.A = 1, R.B = 2")
        assert len(conjuncts(q.where)) == 2

    def test_or(self):
        q = parse_query("SELECT * FROM R WHERE R.A = 1 OR R.B = 2")
        assert isinstance(q.where, Or)

    def test_parentheses(self):
        q = parse_query("SELECT * FROM R WHERE (R.A = 1 OR R.B = 2) AND R.C = 3")
        parts = conjuncts(q.where)
        assert len(parts) == 2
        assert isinstance(parts[0], Or)

    def test_string_literal(self):
        q = parse_query("SELECT * FROM R WHERE R.City = 'Key West'")
        assert q.where.right == Literal("Key West")

    def test_ne_aliases(self):
        for op_text in ("<>", "!="):
            q = parse_query(f"SELECT * FROM R WHERE R.A {op_text} R.B")
            assert q.where.op is ComparisonOp.NE


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_query("SELECT * FROM R extra nonsense")

    def test_missing_operator(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM R WHERE R.A R.B")
