"""Unit tests for the query planner."""

import pytest

from repro.sqlengine.parser import parse_query
from repro.sqlengine.planner import JoinPlan, ScanPlan, explain, plan_query
from repro.sqlengine.tokens import SqlSyntaxError


def plan(sql, **kwargs):
    return plan_query(parse_query(sql), **kwargs)


class TestPlanShapes:
    def test_single_table_scan(self):
        p = plan("SELECT * FROM R AS R1 WHERE R1.A = 1")
        assert isinstance(p.root, ScanPlan)
        assert len(p.root.filters) == 1

    def test_equality_becomes_hash_join(self):
        p = plan(
            "SELECT * FROM R AS R1, R AS R2 WHERE R1.A = R2.A AND R1.B < R2.B"
        )
        assert isinstance(p.root, JoinPlan)
        assert p.root.use_hash
        assert len(p.root.equi_keys) == 1
        assert len(p.root.residual) == 1

    def test_no_equality_means_nested_loop(self):
        p = plan("SELECT * FROM R AS R1, R AS R2 WHERE R1.A < R2.A")
        assert isinstance(p.root, JoinPlan)
        assert not p.root.use_hash

    def test_force_nested_loop(self):
        p = plan(
            "SELECT * FROM R AS R1, R AS R2 WHERE R1.A = R2.A",
            force_nested_loop=True,
        )
        assert not p.root.use_hash
        # The equality key is still recorded for the nested-loop filter.
        assert p.root.equi_keys

    def test_single_alias_predicates_pushed_down(self):
        p = plan("SELECT * FROM R AS R1, R AS R2 WHERE R1.A = 1 AND R1.A = R2.A")
        scans = [p.root.left, p.root.right]
        pushed = [s for s in scans if isinstance(s, ScanPlan) and s.filters]
        assert len(pushed) == 1

    def test_three_way_join_left_deep(self):
        p = plan(
            "SELECT * FROM R AS A, R AS B, R AS C "
            "WHERE A.X = B.X AND B.Y = C.Y"
        )
        assert isinstance(p.root, JoinPlan)
        assert isinstance(p.root.left, JoinPlan)
        assert p.root.use_hash and p.root.left.use_hash

    def test_or_condition_is_residual(self):
        p = plan(
            "SELECT * FROM R AS R1, R AS R2 "
            "WHERE R1.A = R2.A AND (R1.B = 1 OR R2.B = 2)"
        )
        assert len(p.root.residual) == 1


class TestErrors:
    def test_unqualified_column_in_join_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unqualified"):
            plan("SELECT * FROM R AS R1, R AS R2 WHERE A = R2.A")

    def test_unknown_alias_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unknown table alias"):
            plan("SELECT * FROM R AS R1 WHERE R9.A = 1")


class TestExplain:
    def test_explain_mentions_join_kind(self):
        p = plan("SELECT * FROM R AS R1, R AS R2 WHERE R1.A = R2.A")
        text = explain(p)
        assert "HashJoin" in text
        assert "Scan R AS R1" in text

    def test_explain_nested_loop(self):
        p = plan("SELECT * FROM R AS R1, R AS R2 WHERE R1.A < R2.A")
        assert "NestedLoopJoin" in explain(p)


class TestEqualityReorder:
    def _aliases_in_order(self, node):
        if isinstance(node, ScanPlan):
            return [node.table.alias]
        return self._aliases_in_order(node.left) + [node.right.table.alias]

    def test_from_order_cross_product_avoided(self):
        # FROM order T0, T1, T2 but the equality edges are T0–T2 and T2–T1:
        # the plain plan pays a cross product on the T0 ⋈ T1 step, the
        # reordered plan follows the equality graph.
        sql = (
            "SELECT T0.ID FROM R AS T0, R AS T1, R AS T2 "
            "WHERE T0.A = T2.A AND T2.B = T1.B"
        )
        plain = plan(sql)
        assert not plain.root.left.use_hash  # T0 ⋈ T1 has no key
        reordered = plan(sql, reorder_equalities=True)
        assert self._aliases_in_order(reordered.root) == ["T0", "T2", "T1"]
        node = reordered.root
        while isinstance(node, JoinPlan):
            assert node.use_hash and node.equi_keys
            node = node.left

    def test_seed_alias_stays_first(self):
        sql = (
            "SELECT T0.ID FROM R AS T1, R AS T0, R AS T2 "
            "WHERE T0.A = T1.A AND T1.B = T2.B"
        )
        reordered = plan(sql, reorder_equalities=True)
        assert self._aliases_in_order(reordered.root)[0] == "T1"

    def test_unreachable_aliases_come_last(self):
        sql = (
            "SELECT T0.ID FROM R AS T0, R AS T1, R AS T2 "
            "WHERE T0.A = T2.A"
        )
        reordered = plan(sql, reorder_equalities=True)
        assert self._aliases_in_order(reordered.root) == ["T0", "T2", "T1"]
        assert not reordered.root.use_hash  # T1 joins with no key
