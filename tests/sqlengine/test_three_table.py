"""Execution tests for queries over three tables (wide-DC support path)."""

import pytest

from repro.relational import Database, Fact, Schema
from repro.sqlengine import SqlEngine


@pytest.fixture
def db():
    schema = Schema.from_dict(
        {"R": ["A", "B"], "S": ["B", "C"], "T": ["C", "D"]}
    )
    database = Database(schema)
    for row in [(1, 10), (2, 20)]:
        database.insert(Fact("R", row))
    for row in [(10, 100), (20, 200), (10, 300)]:
        database.insert(Fact("S", row))
    for row in [(100, "x"), (300, "y")]:
        database.insert(Fact("T", row))
    return database


class TestThreeWayJoins:
    def test_chain_join(self, db):
        rows = SqlEngine(db).execute(
            "SELECT R.A, T.D FROM R, S, T "
            "WHERE R.B = S.B AND S.C = T.C"
        )
        assert sorted(rows) == [(1, "x"), (1, "y")]

    def test_chain_join_nested_loop_agrees(self, db):
        sql = (
            "SELECT R.A, T.D FROM R, S, T WHERE R.B = S.B AND S.C = T.C"
        )
        fast = SqlEngine(db).execute(sql)
        slow = SqlEngine(db, force_nested_loop=True).execute(sql)
        assert sorted(fast) == sorted(slow)

    def test_triple_cross_product_count(self, db):
        rows = SqlEngine(db).execute("SELECT COUNT(*) FROM R, S, T")
        assert rows == [(2 * 3 * 2,)]

    def test_filter_on_last_table(self, db):
        rows = SqlEngine(db).execute(
            "SELECT R.A FROM R, S, T "
            "WHERE R.B = S.B AND S.C = T.C AND T.D = 'y'"
        )
        assert rows == [(1,)]

    def test_distinct_across_three(self, db):
        rows = SqlEngine(db).execute(
            "SELECT DISTINCT R.A FROM R, S, T WHERE R.B = S.B AND S.C = T.C"
        )
        assert rows == [(1,)]

    def test_ids_exposed_for_all_aliases(self, db):
        rows = SqlEngine(db).execute(
            "SELECT R.ID, S.ID, T.ID FROM R, S, T "
            "WHERE R.B = S.B AND S.C = T.C"
        )
        assert all(len(row) == 3 for row in rows)
        assert len(rows) == 2
