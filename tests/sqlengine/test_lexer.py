"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import SqlSyntaxError, TokenType


def kinds(sql):
    return [token.type for token in tokenize(sql)]


def texts(sql):
    return [token.text for token in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select DISTINCT from")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        assert texts("R1 foo_bar") == ["R1", "foo_bar"]

    def test_qualified_column(self):
        assert kinds("R1.ID")[:3] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]

    def test_operators(self):
        assert texts("< <= > >= = <> !=") == ["<", "<=", ">", ">=", "=", "<>", "!="]

    def test_numbers(self):
        tokens = tokenize("42 -7 3.25")
        assert [t.text for t in tokens[:-1]] == ["42", "-7", "3.25"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_string_literal(self):
        tokens = tokenize("'Key West'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "Key West"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''Hare'")
        assert tokens[0].text == "O'Hare"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError, match="unexpected"):
            tokenize("SELECT @")

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_punctuation(self):
        assert kinds("(,)*")[:4] == [
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.RPAREN,
            TokenType.STAR,
        ]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
