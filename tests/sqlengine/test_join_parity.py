"""Randomized hash-join vs nested-loop parity for the mini SQL engine.

The planner promises that join strategy is a pure performance choice: for
any query, ``force_nested_loop=True`` and the default hash-join plan must
return the same row multiset.  This suite generates random multi-table
equi-join queries (with NULL-heavy columns, cross-alias inequalities and
constant filters) over random databases and pins that parity — including
under ``reorder_equalities=True``, which must only permute the join order,
never the result.
"""

from __future__ import annotations

import random

import pytest

from repro.relational import Database, Fact, Schema
from repro.sqlengine import SqlEngine, parse_query, plan_query

_ATTRIBUTES = ["A", "B", "C"]


def _random_database(rng: random.Random) -> Database:
    relations = [f"R{k}" for k in range(rng.randint(1, 3))]
    schema = Schema.from_dict({name: list(_ATTRIBUTES) for name in relations})
    database = Database(schema)
    for name in relations:
        for _ in range(rng.randint(0, 25)):
            values = tuple(
                None if rng.random() < 0.15 else rng.randint(0, 5)
                for _ in _ATTRIBUTES
            )
            database.insert(Fact(name, values))
    return database


def _random_query(rng: random.Random, database: Database) -> str:
    relations = database.schema.relation_names()
    width = rng.randint(1, 3)
    aliases = [f"T{k}" for k in range(width)]
    tables = ", ".join(
        f"{rng.choice(relations)} AS {alias}" for alias in aliases
    )
    predicates: list[str] = []
    # Equality joins chaining the aliases (sometimes sparse, leaving
    # genuine cross products for the nested-loop fallback).
    for position in range(1, width):
        if rng.random() < 0.8:
            left = rng.choice(aliases[:position])
            predicates.append(
                f"{left}.{rng.choice(_ATTRIBUTES)} = "
                f"T{position}.{rng.choice(_ATTRIBUTES)}"
            )
    for _ in range(rng.randint(0, 2)):
        alias = rng.choice(aliases)
        if rng.random() < 0.5:
            predicates.append(
                f"{alias}.{rng.choice(_ATTRIBUTES)} "
                f"{rng.choice(['<', '<=', '>', '>=', '<>'])} "
                f"{rng.choice(aliases)}.{rng.choice(_ATTRIBUTES)}"
            )
        else:
            predicates.append(
                f"{alias}.{rng.choice(_ATTRIBUTES)} "
                f"{rng.choice(['=', '<', '>'])} {rng.randint(0, 5)}"
            )
    select = ", ".join(f"{alias}.ID" for alias in aliases)
    sql = f"SELECT {select} FROM {tables}"
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql


class TestJoinParity:
    @pytest.mark.parametrize("case", range(20))
    def test_hash_equals_nested_loop(self, case, case_rng):
        rng = case_rng
        database = _random_database(rng)
        query = parse_query(_random_query(rng, database))
        hash_rows = SqlEngine(database).execute_query(query)
        nested_rows = SqlEngine(
            database, force_nested_loop=True
        ).execute_query(query)
        assert sorted(hash_rows) == sorted(nested_rows)

    @pytest.mark.parametrize("case", range(12))
    def test_reordered_plan_same_rows(self, case, case_rng):
        """Equality-graph join order only permutes work, never results."""
        rng = case_rng
        database = _random_database(rng)
        query = parse_query(_random_query(rng, database))
        baseline = SqlEngine(database).execute_query(query)
        reordered = SqlEngine(database).execute_plan(
            plan_query(query, reorder_equalities=True)
        )
        assert sorted(baseline) == sorted(reordered)

    def test_null_keys_never_join(self):
        schema = Schema.from_dict({"R": ["A"]})
        database = Database(schema)
        database.insert(Fact("R", (None,)))
        database.insert(Fact("R", (None,)))
        database.insert(Fact("R", (1,)))
        query = parse_query(
            "SELECT T0.ID, T1.ID FROM R AS T0, R AS T1 WHERE T0.A = T1.A"
        )
        for force in (False, True):
            rows = SqlEngine(
                database, force_nested_loop=force
            ).execute_query(query)
            assert rows == [(2, 2)]
