"""End-to-end integration tests crossing all subsystems."""

import pytest

from repro import Database, Schema, make_measure, measure, parse_dc, parse_fd
from repro.cleaning import MiniHoloClean
from repro.datasets import generate_sample
from repro.experiments import run_behavior_experiment
from repro.measures import make_measures
from repro.noise import CONoise, RNoise
from repro.repairs import minimum_subset_repair
from repro.violations import build_violation_index, is_consistent


class TestPublicApiFlow:
    def test_quickstart_flow(self):
        schema = Schema.from_dict({"City": ["Name", "Country", "Pop"]})
        db = Database.from_rows(
            schema,
            "City",
            [("Paris", "FR", 2), ("Paris", "DE", 1), ("Lyon", "FR", 1)],
        )
        fd = parse_fd("City: Name -> Country")
        assert measure("I_d", [fd], db) == 1.0
        assert measure("I_MI", [fd], db) == 1.0
        assert measure("I_R", [fd], db) == 1.0
        repair = minimum_subset_repair([fd], db)
        assert is_consistent([fd], db.without(repair.deleted_ids))

    def test_mixed_constraint_kinds(self):
        schema = Schema.from_dict({"T": ["A", "B"]})
        db = Database.from_rows(schema, "T", [(5, 1), (5, 2), (0, 9)])
        fd = parse_fd("T: A -> B")
        dc = parse_dc("not(t.A > t.B)", "T")
        index = build_violation_index([fd, dc], db)
        # FD pair {0,1}; unary violations {0} and {1} (5 > 1, 5 > 2) absorb it.
        assert sorted(tuple(sorted(s)) for s in index.mi_sets) == [(0,), (1,)]
        assert measure("I_R", [fd, dc], db) == 2.0


class TestNoiseMeasureCleanLoop:
    @pytest.mark.parametrize("dataset", ["Hospital", "Tax"])
    def test_full_cycle(self, dataset):
        db, constraints = generate_sample(dataset, 120, seed=13)
        assert is_consistent(constraints, db)

        noise = RNoise(constraints, alpha=0.02, seed=14)
        noise.run(db)
        dirty_value = measure("I_lin_R", constraints, db)
        assert dirty_value > 0

        MiniHoloClean(constraints, seed=0).clean(db)
        cleaned_value = measure("I_lin_R", constraints, db)
        assert cleaned_value <= dirty_value

    def test_behavior_run_is_reasonable(self):
        db, constraints = generate_sample("Airport", 100, seed=20)
        noise = CONoise(constraints, seed=21)
        measures = make_measures(["I_d", "I_MI", "I_P", "I_R", "I_lin_R"])
        result = run_behavior_experiment(
            db, constraints, noise, measures, iterations=12, measure_every=4
        )
        # I_R dominates I_lin_R pointwise; both start at zero and end above.
        for ir, lin in zip(result.series["I_R"], result.series["I_lin_R"]):
            assert lin <= ir + 1e-9
        assert result.series["I_MI"][0] == 0.0
        assert result.series["I_MI"][-1] > 0.0


class TestMeasureConsistencyAcrossPaths:
    def test_shared_index_equals_fresh_computation(self):
        db, constraints = generate_sample("Food", 100, seed=30)
        CONoise(constraints, seed=31).run(db, 15)
        index = build_violation_index(constraints, db)
        for name in ("I_d", "I_MI", "I_P", "I_R", "I_lin_R"):
            m = make_measure(name)
            assert m.value(constraints, db, index) == m.value(constraints, db)

    def test_mc_measures_agree_on_fd_data(self):
        db, constraints = generate_sample("Stock", 60, seed=32)
        CONoise(constraints, seed=33).run(db, 5)
        imc = measure("I_MC", constraints, db)
        imc_prime = measure("I'_MC", constraints, db)
        index = build_violation_index(constraints, db)
        # Stock DCs are unary: every violation is a self-inconsistency.
        assert imc_prime == imc + len(index.self_inconsistent)
