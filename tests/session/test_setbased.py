"""Batch enumeration == probe enumeration, bit-for-bit.

The acceptance contract of the set-based backend
(:mod:`repro.session.enumeration`) is differential: over randomized DC
sets (equality-joinable chains, constant predicates, NULL-heavy columns,
unary DCs, and deliberately non-joinable DCs that force the ``auto``
fallback) and randomized cold databases plus interleaved
insert/delete/update histories, a session running ``engine="batch"`` /
``"auto"`` must maintain **identical witness sets** — and therefore
identical ``index()`` content and measure values — to the ``"probe"``
reference over the same data.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.base import ComparisonOp
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.relational import Database, Fact, Schema
from repro.session import (
    MeasurementSession,
    batch_compilable,
    make_session,
)

_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]


def _schema(relations: list[str]) -> Schema:
    return Schema.from_dict({relation: ["A", "B", "C"] for relation in relations})


def _random_value(rng: random.Random, spread: int):
    roll = rng.random()
    if roll < 0.08:
        return None
    if roll < 0.16:
        return rng.choice("xy")
    return rng.randint(0, spread)


def _random_fact(rng: random.Random, relation: str, spread: int) -> Fact:
    return Fact(
        relation,
        (
            rng.randint(0, spread),
            _random_value(rng, 5),
            _random_value(rng, 5),
        ),
    )


def _random_dc(
    rng: random.Random, relations: list[str], number: int
) -> DenialConstraint:
    """A random DC drawn from the shapes the backend must cover."""
    shape = rng.randrange(6)
    relation = rng.choice(relations)
    if shape == 0:  # unary
        return DenialConstraint(
            [("t", relation)],
            [
                Predicate(Term.col("t", "B"), rng.choice(_OPS), Term.col("t", "C")),
                Predicate(
                    Term.col("t", "A"), rng.choice(_OPS), Term.const(rng.randint(0, 4))
                ),
            ][: rng.randint(1, 2)],
            name=f"dc{number}_unary",
        )
    if shape == 1:  # FD-style self-join
        return DenialConstraint(
            [("t", relation), ("t2", relation)],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), rng.choice(_OPS), Term.col("t2", "B")),
            ],
            name=f"dc{number}_fd",
        )
    if shape == 2:  # cross-relation equality join plus filters
        other = rng.choice(relations)
        predicates = [
            Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("s", "A")),
            Predicate(Term.col("t", "B"), rng.choice(_OPS), Term.col("s", "C")),
        ]
        if rng.random() < 0.5:
            predicates.append(
                Predicate(
                    Term.col("s", "B"), rng.choice(_OPS), Term.const(rng.randint(0, 4))
                )
            )
        return DenialConstraint(
            [("t", relation), ("s", other)], predicates, name=f"dc{number}_cross"
        )
    if shape == 3:  # width-3 equality chain
        middle, other = rng.choice(relations), rng.choice(relations)
        return DenialConstraint(
            [("t", relation), ("u", middle), ("v", other)],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("u", "A")),
                Predicate(Term.col("u", "A"), ComparisonOp.EQ, Term.col("v", "A")),
                Predicate(Term.col("t", "B"), rng.choice(_OPS), Term.col("v", "B")),
                Predicate(Term.col("u", "C"), rng.choice(_OPS), Term.col("t", "C")),
            ],
            name=f"dc{number}_chain",
        )
    if shape == 4:  # equality pair plus a lone constant-bound variable
        other = rng.choice(relations)
        return DenialConstraint(
            [("t", relation), ("u", relation), ("v", other)],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("u", "A")),
                Predicate(Term.col("t", "B"), rng.choice(_OPS), Term.col("u", "B")),
                Predicate(
                    Term.col("v", "C"),
                    rng.choice([ComparisonOp.EQ, ComparisonOp.GT]),
                    Term.const(rng.randint(0, 4)),
                ),
            ],
            name=f"dc{number}_lone",
        )
    # non-equality-joinable (auto must fall back to the probe)
    return DenialConstraint(
        [("t", relation), ("t2", relation)],
        [
            Predicate(Term.col("t", "B"), ComparisonOp.LT, Term.col("t2", "B")),
            Predicate(Term.col("t", "C"), ComparisonOp.EQ, Term.const(1)),
            Predicate(Term.col("t2", "C"), ComparisonOp.EQ, Term.const(2)),
        ],
        name=f"dc{number}_cross_product",
    )


def _random_instance(rng: random.Random, size: int):
    relations = [f"R{k}" for k in range(rng.randint(1, 3))]
    schema = _schema(relations)
    # Join-column spread scales with size so witness density stays tame.
    spread = max(6, size // 3)
    database = Database(schema)
    for _ in range(size):
        database.insert(_random_fact(rng, rng.choice(relations), spread))
    dcs = [_random_dc(rng, relations, k) for k in range(rng.randint(1, 4))]
    return schema, relations, spread, database, dcs


def _witness_sets(session: MeasurementSession) -> list[set[frozenset[int]]]:
    return [set(store) for store in session._witnesses]


def _assert_identical(
    probe: MeasurementSession, other: MeasurementSession
) -> None:
    # index() flushes pending deltas before the stores are compared.
    assert probe.index().mi_sets == other.index().mi_sets
    assert _witness_sets(probe) == _witness_sets(other)
    assert [
        [v.fact_ids for v in store.ordered()] for store in probe._witnesses
    ] == [[v.fact_ids for v in store.ordered()] for store in other._witnesses]


def _mutate(rng: random.Random, database: Database, relations, spread) -> None:
    identifiers = database.ids()
    roll = rng.random()
    if roll < 0.35 and identifiers:
        identifier = rng.choice(identifiers)
        attribute = rng.choice(["A", "B", "C"])
        database.update(identifier, attribute, _random_value(rng, spread))
    elif roll < 0.6 and identifiers:
        database.delete(rng.choice(identifiers))
    else:
        database.insert(_random_fact(rng, rng.choice(relations), spread))


class TestColdEquivalence:
    @pytest.mark.parametrize("case", range(8))
    def test_cold_witnesses_identical(self, case, case_rng):
        rng = case_rng
        _, _, _, database, dcs = _random_instance(rng, rng.randint(20, 80))
        probe = MeasurementSession(
            [], database, dcs=dcs, subscribe=False, engine="probe"
        )
        for engine in ("batch", "auto"):
            if engine == "batch" and not all(batch_compilable(dc) for dc in dcs):
                continue
            session = MeasurementSession(
                [], database, dcs=dcs, subscribe=False, engine=engine
            )
            _assert_identical(probe, session)

    def test_auto_engine_selection(self, case_rng):
        rng = case_rng
        relations = ["R0"]
        joinable = _random_dc(rng, relations, 0)
        while not batch_compilable(joinable):
            joinable = _random_dc(rng, relations, 0)
        database = Database(_schema(relations))
        crossing = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [Predicate(Term.col("t", "B"), ComparisonOp.LT, Term.col("t2", "B"))],
            name="nojoin",
        )
        session = MeasurementSession(
            [], database, dcs=[joinable, crossing], subscribe=False
        )
        engines = [s["engine"] for s in session.stats()["constraints"]]
        assert engines == ["batch", "probe"]

    def test_batch_engine_rejects_non_joinable(self):
        schema = _schema(["R0"])
        database = Database(schema)
        crossing = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [Predicate(Term.col("t", "B"), ComparisonOp.LT, Term.col("t2", "B"))],
            name="nojoin",
        )
        with pytest.raises(ValueError, match="not equality-joinable"):
            MeasurementSession(
                [], database, dcs=[crossing], subscribe=False, engine="batch"
            )

    def test_unknown_engine_rejected(self):
        database = Database(_schema(["R0"]))
        with pytest.raises(ValueError, match="unknown enumeration engine"):
            MeasurementSession([], database, dcs=[], engine="vectorized")

    def test_stats_counters_track_work(self, case_rng):
        rng = case_rng
        _, relations, spread, database, _ = _random_instance(rng, 40)
        dc = DenialConstraint(
            [("t", relations[0]), ("t2", relations[0])],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        session = MeasurementSession(
            [], database, dcs=[dc], engine="batch"
        )
        stats = session.stats()["constraints"][0]
        assert stats["constraint"] == "fd"
        assert stats["engine"] == "batch"
        assert stats["plans_compiled"] == dc.width
        assert stats["cold_runs"] == 1
        assert stats["batches_joined"] >= 1
        assert stats["rows_scanned"] > 0
        database.insert(_random_fact(rng, relations[0], spread))
        session.index()
        assert session.stats()["constraints"][0]["delta_runs"] == 1
        session.close()


class TestDeltaEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("case", range(6))
    def test_interleaved_histories_identical(self, case, case_rng):
        rng = case_rng
        _, relations, spread, database, dcs = _random_instance(
            rng, rng.randint(15, 50)
        )
        mirror = Database(database.schema)
        for _, fact in database.items():
            mirror.insert(Fact(fact.relation, fact.values))
        probe = MeasurementSession([], database, dcs=dcs, engine="probe")
        batch = MeasurementSession([], mirror, dcs=dcs, engine="auto")
        _assert_identical(probe, batch)
        for step in range(rng.randint(25, 60)):
            state = rng.getstate()
            _mutate(rng, database, relations, spread)
            rng.setstate(state)
            _mutate(rng, mirror, relations, spread)
            if step % rng.randint(2, 5) == 0:
                _assert_identical(probe, batch)
        _assert_identical(probe, batch)
        probe.close()
        batch.close()

    @pytest.mark.slow
    @pytest.mark.parametrize("case", range(3))
    def test_speculation_identical(self, case, case_rng):
        """Batched speculation previews run through the batch delta path too."""
        from repro.measures import make_measure
        from repro.repairs.operations import DeleteOperation, UpdateOperation

        rng = case_rng
        _, relations, spread, database, dcs = _random_instance(
            rng, rng.randint(15, 40)
        )
        mirror = Database(database.schema)
        for _, fact in database.items():
            mirror.insert(Fact(fact.relation, fact.values))
        probe = MeasurementSession([], database, dcs=dcs, engine="probe")
        batch = MeasurementSession([], mirror, dcs=dcs, engine="auto")
        measure = make_measure("I_MI")
        for _ in range(4):
            identifiers = database.ids()
            if not identifiers:
                break
            candidates = []
            for _ in range(3):
                identifier = rng.choice(identifiers)
                if rng.random() < 0.5:
                    candidates.append([DeleteOperation(identifier)])
                else:
                    candidates.append(
                        [
                            UpdateOperation(
                                identifier,
                                rng.choice(["A", "B"]),
                                _random_value(rng, spread),
                            )
                        ]
                    )
            assert probe.speculate_batch(candidates, [measure]) == (
                batch.speculate_batch(candidates, [measure])
            )
            state = rng.getstate()
            _mutate(rng, database, relations, spread)
            rng.setstate(state)
            _mutate(rng, mirror, relations, spread)
        _assert_identical(probe, batch)
        probe.close()
        batch.close()


class TestShardedAndWarmStart:
    def test_sharded_engine_passthrough_and_stats(self, case_rng):
        rng = case_rng
        relations = ["R0", "R1"]
        schema = _schema(relations)
        database = Database(schema)
        for _ in range(30):
            database.insert(_random_fact(rng, rng.choice(relations), 6))
        from repro.constraints import FunctionalDependency

        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            FunctionalDependency("R1", {"A"}, {"C"}),
        ]
        session = make_session(constraints, database, shards="auto", engine="batch")
        flat = MeasurementSession(constraints, database, subscribe=False, engine="probe")
        assert session.index().mi_sets == flat.index().mi_sets
        stats = session.stats()
        assert stats["engine"] == "batch"
        assert [s["engine"] for s in stats["constraints"]] == ["batch", "batch"]
        # Global lowered-DC order is preserved through the shard routing.
        assert [s["constraint"] for s in stats["constraints"]] == [
            dc.name for dc in session.dcs
        ]
        session.close()
        flat.close()

    def test_warm_start_uses_batch_delta(self, case_rng):
        rng = case_rng
        relations = ["R0"]
        schema = _schema(relations)
        database = Database(schema)
        for _ in range(25):
            database.insert(_random_fact(rng, "R0", 5))
        dc = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        with MeasurementSession([], database, dcs=[dc], engine="batch") as warm_src:
            snap = warm_src.snapshot()
        session = MeasurementSession(
            [], database, dcs=[dc], engine="batch", warm_start=snap
        )
        assert session.warm_started
        assert session.stats()["constraints"][0]["cold_runs"] == 0
        reference = MeasurementSession(
            [], database, dcs=[dc], subscribe=False, engine="probe"
        )
        _assert_identical(reference, session)
        for _ in range(10):
            _mutate(rng, database, relations, 5)
        reference.refresh()
        _assert_identical(reference, session)
        assert session.stats()["constraints"][0]["delta_runs"] >= 1
        session.close()
