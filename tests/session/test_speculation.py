"""Speculative what-if evaluation: copy-free scoring and savepoint rollback.

Two randomized invariants anchor the subsystem:

* ``session.speculate(ops, measures)`` returns, for every measure in the
  registry, exactly the value of the copy-apply-rebuild path
  (``measure.value(Σ, ops(D.copy()))``);
* rolling back a savepoint restores a bit-identical database (facts,
  identifier allocator, active domains), equality-column index and witness
  store — cross-checked against ``session.refresh()``.
"""

from __future__ import annotations

import random

import pytest

from repro.measures import TABLE2_MEASURES, available_measures, make_measure
from repro.relational import Database, Fact, Schema
from repro.repairs.operations import (
    DeleteOperation,
    InsertOperation,
    RestoreOperation,
    UpdateOperation,
    apply_sequence,
)
from repro.session import MeasurementSession
from repro.violations import affected_components, build_violation_index

from .test_session import _constraint_suites, _random_fact, _random_mutation


@pytest.fixture
def schema() -> Schema:
    return Schema.from_dict({"R": ["A", "B", "C"]})


def _bounded_mutation(
    rng: random.Random, database: Database, cap: int = 8
) -> None:
    """A random mutation that keeps the database under *cap* facts.

    The full-registry suites include the exact update-repair measure,
    which is exponential in the problematic-fact count — unbounded random
    growth would make the runtime seed-dependent.
    """
    if len(database) >= cap:
        database.delete(rng.choice(database.ids()))
        return
    _random_mutation(rng, database)


def _random_operations(rng: random.Random, database: Database) -> list:
    """A batch of 1-3 candidate operations against the current state."""
    operations = []
    for _ in range(rng.randint(1, 3)):
        identifiers = database.ids()
        roll = rng.random()
        if roll < 0.4 and identifiers:
            operations.append(DeleteOperation(rng.choice(identifiers)))
        elif roll < 0.8 and identifiers:
            attribute = rng.choice(["A", "B", "C"])
            value = rng.randint(0, 6) if rng.random() < 0.7 else rng.choice("xyz")
            operations.append(
                UpdateOperation(rng.choice(identifiers), attribute, value)
            )
        else:
            operations.append(InsertOperation(_random_fact(rng)))
    return operations


def _domain_snapshot(database: Database) -> dict:
    return {
        key: {value: domain.frequency(value) for value in domain}
        for key, domain in database._domains.items()
        if len(domain) > 0
    }


def _eq_index_snapshot(session: MeasurementSession) -> dict:
    return {
        column: {value: set(ids) for value, ids in buckets.items()}
        for column, buckets in session._eq_index._maps.items()
    }


def _witness_snapshot(session: MeasurementSession) -> tuple:
    return (
        [set(store) for store in session._witnesses],
        {key: set(entries) for key, entries in session._touching.items()},
    )


class TestSpeculateEqualsCopyRebuild:
    @pytest.mark.slow
    @pytest.mark.parametrize("case", [0, 1, 2])
    def test_full_registry_small_database(self, schema, case, case_rng):
        """Every registered measure, including the whole-database ones."""
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(8)]
        )
        constraints = _constraint_suites()["binary"]
        measures = [make_measure(name) for name in available_measures()]
        with MeasurementSession(constraints, database) as session:
            for _ in range(10):
                operations = _random_operations(rng, database)
                expected = {
                    measure.name: measure.value(
                        constraints, apply_sequence(database, operations)
                    )
                    for measure in measures
                }
                assert session.speculate(operations, measures) == expected
                # Speculation must not leak into the live state.
                assert session.index().mi_sets == build_violation_index(
                    constraints, database
                ).mi_sets
                _bounded_mutation(rng, database)

    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1])
    def test_table2_measures_with_mutation_interleaving(
        self, schema, suite, case, case_rng
    ):
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(16)]
        )
        constraints = _constraint_suites()[suite]
        measures = [make_measure(name) for name in TABLE2_MEASURES]
        with MeasurementSession(constraints, database) as session:
            for _ in range(15):
                operations = _random_operations(rng, database)
                expected = {
                    measure.name: measure.value(
                        constraints, apply_sequence(database, operations)
                    )
                    for measure in measures
                }
                assert session.speculate(operations, measures) == expected
                for _ in range(rng.randint(0, 2)):
                    _random_mutation(rng, database)

    def test_speculative_insert_allocates_like_the_copy(self, schema):
        """Insert ids match the copy path (minimal free identifier)."""
        database = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        constraints = _constraint_suites()["binary"]
        with MeasurementSession(constraints, database) as session:
            database.delete(0)  # free the minimal identifier
            operation = InsertOperation(Fact("R", (1, "x", 0)))
            copy = operation.apply(database)
            measure = make_measure("I_MI")
            assert session.speculate_value([operation], measure) == measure.value(
                constraints, copy
            )
            assert 0 not in database  # rolled back


class TestSavepointRollback:
    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1, 2])
    def test_rollback_restores_bit_identical_state(
        self, schema, suite, case, case_rng
    ):
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(18)]
        )
        constraints = _constraint_suites()[suite]
        with MeasurementSession(constraints, database) as session:
            session.index()
            facts_before = dict(database._facts)
            next_id_before = database._next_id
            domains_before = _domain_snapshot(database)
            eq_before = _eq_index_snapshot(session)
            with session.savepoint():
                for _ in range(30):
                    _random_mutation(rng, database)
                session.index()  # exercise mid-savepoint flushes too
            index = session.index()  # flush the rollback deltas
            assert database._facts == facts_before
            assert database._next_id == next_id_before
            assert _domain_snapshot(database) == domains_before
            assert _eq_index_snapshot(session) == eq_before
            witnesses_after, touching_after = _witness_snapshot(session)
            fresh = session.refresh()
            witnesses_fresh, touching_fresh = _witness_snapshot(session)
            assert witnesses_after == witnesses_fresh
            assert touching_after == touching_fresh
            assert index.mi_sets == fresh.mi_sets

    def test_release_keeps_changes(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 0)])
        with database.savepoint() as savepoint:
            database.insert(Fact("R", (1, "y", 0)))
            savepoint.release()
        assert len(database) == 2
        assert not savepoint.active
        with pytest.raises(RuntimeError):
            savepoint.rollback()

    def test_nested_savepoints(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 0)])
        with database.savepoint():
            database.update(0, "B", "y")
            with database.savepoint():
                database.insert(Fact("R", (2, "z", 1)))
            assert len(database) == 1  # inner rolled back
            assert database.get_cell(0, "B") == "y"  # outer still applied
        assert database.get_cell(0, "B") == "x"
        assert len(database) == 1

    def test_rollback_restores_identifiers_in_order(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (2, "y", 0), (3, "z", 0)]
        )
        facts_before = dict(database._facts)
        with database.savepoint():
            database.delete(0)
            database.delete(2)
            database.insert(Fact("R", (9, "w", 9)))  # takes identifier 0
        assert database._facts == facts_before


class TestOperationInverse:
    def test_inverse_roundtrip(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (2, "y", 1)]
        )
        operations = [
            DeleteOperation(0),
            UpdateOperation(1, "B", "q"),
            InsertOperation(Fact("R", (7, "n", 7))),
            RestoreOperation(5, Fact("R", (5, "r", 5))),
        ]
        for operation in operations:
            snapshot = dict(database._facts)
            undo = operation.inverse(database)
            assert undo is not None, operation
            assert operation.apply_in_place(database)
            assert undo.apply_in_place(database)
            assert database._facts == snapshot, operation

    def test_inapplicable_operations_have_no_inverse(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 0)])
        assert DeleteOperation(9).inverse(database) is None
        assert UpdateOperation(0, "B", "x").inverse(database) is None
        assert UpdateOperation(9, "B", "y").inverse(database) is None
        assert RestoreOperation(0, database[0]).inverse(database) is None

    def test_insert_inverse_targets_the_allocated_identifier(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (2, "y", 0)]
        )
        database.delete(0)
        operation = InsertOperation(Fact("R", (3, "z", 0)))
        undo = operation.inverse(database)
        assert undo == DeleteOperation(0)


class TestSpeculateBatch:
    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1])
    def test_batch_equals_sequential_speculation(
        self, schema, suite, case, case_rng
    ):
        """Value identity: batch == per-candidate speculate == copy-rebuild,
        for the full registry (whole-database measures take the fallback)."""
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(14)]
        )
        constraints = _constraint_suites()[suite]
        measures = [make_measure(name) for name in TABLE2_MEASURES]
        with MeasurementSession(constraints, database) as session:
            for _ in range(5):
                candidates = [
                    _random_operations(rng, database) for _ in range(4)
                ]
                batch = session.speculate_batch(candidates, measures)
                sequential = [
                    session.speculate(operations, measures)
                    for operations in candidates
                ]
                assert batch == sequential
                expected = [
                    {
                        measure.name: measure.value(
                            constraints, apply_sequence(database, operations)
                        )
                        for measure in measures
                    }
                    for operations in candidates
                ]
                assert batch == expected
                # Batched speculation must not leak into the live state.
                assert session.index().mi_sets == build_violation_index(
                    constraints, database
                ).mi_sets
                _random_mutation(rng, database)

    @pytest.mark.slow
    @pytest.mark.parametrize("case", [0, 1])
    def test_mixed_batch_falls_back_value_identical(self, schema, case, case_rng):
        """Whole-database measures in the batch force the generic path;
        values still match per-candidate speculation (small database — the
        exact update-repair measure is exponential)."""
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(8)]
        )
        constraints = _constraint_suites()["binary"]
        registry = [make_measure(name) for name in available_measures()]
        with MeasurementSession(constraints, database) as session:
            for _ in range(3):
                candidates = [
                    _random_operations(rng, database) for _ in range(2)
                ]
                assert session.speculate_batch(candidates, registry) == [
                    session.speculate(operations, registry)
                    for operations in candidates
                ]
                _bounded_mutation(rng, database)

    def test_empty_batch(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        constraints = _constraint_suites()["binary"]
        with MeasurementSession(constraints, database) as session:
            assert session.speculate_batch([], [make_measure("I_MI")]) == []

    def test_batch_shares_base_resolution(self, schema):
        """Candidates resolve unaffected components without new solves."""
        database = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "p", 0), (2, "q", 0)],
        )
        constraints = _constraint_suites()["binary"][:1]  # the FD only
        measure = make_measure("I_R")
        with MeasurementSession(constraints, database) as session:
            session.measure(measure)  # warm the cache for both components
            misses_before = session.component_cache.misses
            values = session.speculate_batch(
                [[DeleteOperation(0)], [DeleteOperation(1)]], [measure]
            )
            assert [value[measure.name] for value in values] == [1.0, 1.0]
            # Component {2, 3} is resolved once by the base priming (a cache
            # hit) and shared by identity thereafter; deleting either fact of
            # {0, 1} dissolves that component, so nothing is ever re-solved.
            assert session.component_cache.misses == misses_before

    def test_speculation_base_survives_no_op_flushes(self, schema):
        """The memoized base is keyed on topology generation: a flush that
        changes no witness must not recompute it."""
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (5, "q", 9)]
        )
        constraints = _constraint_suites()["binary"][:1]
        with MeasurementSession(constraints, database) as session:
            base = session._speculation_base()
            database.update(2, "C", 4)  # fact 2 binds no witness
            session.index()
            assert session._speculation_base() is base
            database.update(0, "B", "z")  # retract + re-insert the conflict
            session.index()
            assert session._speculation_base() is not base

    def test_batch_repins_base_across_rounds(self, schema):
        """A batch's rollbacks restore the base; the next batch reuses it."""
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (2, "p", 0), (2, "q", 0)]
        )
        constraints = _constraint_suites()["binary"][:1]
        measure = make_measure("I_MI")
        with MeasurementSession(constraints, database) as session:
            session.speculate_batch([[DeleteOperation(0)]], [measure])
            base = session._spec_base
            session.speculate_batch([[DeleteOperation(2)]], [measure])
            assert session._spec_base is base


class TestComponentLocalizedDelta:
    def test_unchanged_components_hit_the_cache(self, schema):
        # Two disjoint conflict pairs; speculating on one leaves the other's
        # component (and its cached value) untouched.
        database = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "p", 0), (2, "q", 0)],
        )
        constraints = _constraint_suites()["binary"][:1]  # the FD only
        measure = make_measure("I_R")
        with MeasurementSession(constraints, database) as session:
            assert session.measure(measure) == 2.0
            assert affected_components(session.index(), {0}) == [0]
            misses_before = session.component_cache.misses
            assert session.speculate_value([DeleteOperation(0)], measure) == 1.0
            # Component {2, 3} was served from the cache: at most the patched
            # component around facts {0, 1} was recomputed (here: it vanished,
            # so no new component value at all was solved).
            assert session.component_cache.misses == misses_before
            assert session.component_cache.hits > 0

    def test_affected_components_positions(self, schema):
        database = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "p", 0), (2, "q", 0)],
        )
        constraints = _constraint_suites()["binary"][:1]
        index = build_violation_index(constraints, database)
        assert affected_components(index, {2, 3}) == [1]
        assert affected_components(index, {0, 3}) == [0, 1]
        assert affected_components(index, {99}) == []


class TestMixedMeasureSplit:
    def test_flat_mixed_list_keeps_component_fast_path(
        self, schema, monkeypatch
    ):
        """The flat session splits mixed lists too — only ``I_d`` and
        friends pay the generic whole-database pass."""
        import repro.session.session as session_module

        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (2, "x", 0), (2, "z", 0)]
        )
        constraints = _constraint_suites()["binary"]
        mixed = [make_measure(name) for name in ("I_MI", "I_d", "I_R")]
        generic_lists: list[list[str]] = []
        original = session_module._generic_values

        def spy(session, measures):
            generic_lists.append([measure.name for measure in measures])
            return original(session, measures)

        monkeypatch.setattr(session_module, "_generic_values", spy)
        with MeasurementSession(constraints, database) as session:
            values = session.speculate([DeleteOperation(0)], mixed)
            batch = session.speculate_batch(
                [[DeleteOperation(0)], [DeleteOperation(2)]], mixed
            )
        assert generic_lists and all(
            names == ["I_d"] for names in generic_lists
        ), generic_lists
        reference = {
            measure.name: measure.value(
                constraints, apply_sequence(database, [DeleteOperation(0)])
            )
            for measure in mixed
        }
        assert values == reference
        assert batch[0] == reference
