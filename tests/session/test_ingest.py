"""Streaming-ingest pipeline: coalescing, backpressure, staleness, parity.

The anchor invariant is differential: a drained
:class:`~repro.session.ingest.IngestPipeline` must leave the database —
facts, identifier allocator, fingerprint — and the session's maintained
state **bit-identical** to applying every submission eagerly, one event
at a time, whatever the interleaving.  On top of that the suite pins the
coalescing rules (insert→update→delete nets out, last-writer-wins
images, identifier reuse), the bounded-buffer backpressure contract, the
read-staleness/watermark contract with generation-tagged reads, the
flush-residue audit (a coalesced insert+delete leaves nothing behind in
``_touching`` or the equality-index buckets) and generation stability (a
net-empty flush advances nothing and keeps ``_spec_base``).
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import make_measures
from repro.relational import Database, Fact, Schema
from repro.session import (
    IngestError,
    IngestPipeline,
    IngestRead,
    MeasurementSession,
    ShardedMeasurementSession,
    database_fingerprint,
    make_session,
)

MEASURES = make_measures(["I_MI", "I_P", "I_d"])


def _schema() -> Schema:
    # R and S each carry their own FD (two shards); T is mentioned by no
    # constraint, so its events route through the overflow group.
    return Schema.from_dict({"R": ("A", "B"), "S": ("K", "V"), "T": ("X", "Y")})


def _constraints():
    return [
        FunctionalDependency("R", {"A"}, {"B"}),
        FunctionalDependency("S", {"K"}, {"V"}),
    ]


def _seeded(n: int = 12) -> Database:
    database = Database(_schema())
    for k in range(n):
        database.insert(Fact("R", (f"a{k % 4}", f"b{k % 3}")))
        database.insert(Fact("S", (k % 3, k % 2)))
    return database


def _flavors():
    return [
        pytest.param(MeasurementSession, id="flat"),
        pytest.param(ShardedMeasurementSession, id="sharded"),
    ]


def _mirror(reference: Database) -> tuple[Database, MeasurementSession]:
    """A per-event-flushed twin built with the same insertion order."""
    database = Database(_schema())
    for _, fact in reference.items():
        database.insert(fact)
    session = MeasurementSession(_constraints(), database)
    return database, session


def _assert_identical(session_a, database_a, session_b, database_b):
    index_a, index_b = session_a.index(), session_b.index()
    assert index_a.mi_sets == index_b.mi_sets
    assert index_a.per_constraint == index_b.per_constraint
    assert database_fingerprint(database_a) == database_fingerprint(database_b)
    assert session_a.measure_all(MEASURES) == session_b.measure_all(MEASURES)


class TestCoalescing:
    @pytest.mark.parametrize("flavor", _flavors())
    def test_insert_update_delete_nets_out(self, flavor):
        database = _seeded()
        session = flavor(_constraints(), database)
        pipe = session.ingest()
        before = database_fingerprint(database)
        identifier = pipe.submit("insert", Fact("R", ("a0", "zzz")))
        assert pipe.submit("update", identifier, "B", "www") is True
        assert pipe.submit("delete", identifier) is True
        assert pipe.pending == 0
        assert pipe.flush() == 0
        assert database_fingerprint(database) == before

    def test_last_writer_wins_single_net_event(self):
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        for value in ("v1", "v2", "v3"):
            assert pipe.submit("update", 0, "B", value) is True
        assert pipe.pending == 1
        assert pipe.flush() == 1
        assert database[0] == Fact("R", ("a0", "v3"))
        counters = pipe.counters()
        assert counters["events_submitted"] == 3
        assert counters["events_coalesced"] == 2
        assert counters["events_flushed"] == 1

    def test_update_back_to_base_emits_nothing(self):
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        original = database[0].values[1]
        assert pipe.submit("update", 0, "B", "elsewhere") is True
        assert pipe.submit("update", 0, "B", original) is True
        assert pipe.pending == 0
        generation = session.topology.generation
        pipe.flush()
        assert session.topology.generation == generation

    def test_delete_then_reuse_same_relation(self):
        database = _seeded(4)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        mirror_db, mirror_sess = _mirror(database)

        assert pipe.submit("delete", 0) is True
        reused = pipe.submit("insert", Fact("R", ("fresh", "f")))
        assert reused == 0  # minimal free id, per the paper's convention
        assert pipe.pending == 1  # one net replacement, not two events
        pipe.flush()

        mirror_db.delete(0)
        assert mirror_db.insert(Fact("R", ("fresh", "f"))) == 0
        mirror_sess.index()
        _assert_identical(session, database, mirror_sess, mirror_db)

    def test_delete_then_reuse_across_relations(self):
        database = _seeded(4)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        mirror_db, mirror_sess = _mirror(database)

        assert pipe.submit("delete", 0) is True  # an R fact
        assert pipe.submit("insert", Fact("S", (7, 7))) == 0
        pipe.flush()

        mirror_db.delete(0)
        assert mirror_db.insert(Fact("S", (7, 7))) == 0
        mirror_sess.index()
        _assert_identical(session, database, mirror_sess, mirror_db)

    def test_inapplicable_submissions_match_eager_semantics(self):
        database = _seeded(4)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        absent = 10_000
        assert pipe.submit("delete", absent) is False
        assert pipe.submit("update", absent, "B", "x") is False
        assert pipe.submit("update", 0, "Nope", "x") is False
        assert pipe.submit("delete", 0) is True
        # The pending view already deleted 0: updates are inapplicable,
        # a second delete reports False — exactly like the eager database.
        assert pipe.submit("update", 0, "B", "x") is False
        assert pipe.submit("delete", 0) is False
        assert pipe.pending == 1

    def test_unknown_kind_rejected(self):
        session = MeasurementSession(_constraints(), _seeded(2))
        pipe = session.ingest()
        with pytest.raises(ValueError, match="unknown submission kind"):
            pipe.submit("upsert", 0)

    def test_convenience_methods_mirror_submit(self):
        database = _seeded(2)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        identifier = pipe.insert(Fact("S", (9, 9)))
        assert pipe.update(identifier, "V", 5) is True
        assert pipe.delete(identifier) is True
        assert pipe.pending == 0


class TestAllocatorFidelity:
    def test_reserved_ids_match_eager_allocation(self):
        database = _seeded(3)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        mirror_db, mirror_sess = _mirror(database)

        steps = [
            ("insert", Fact("T", (1, 1))),
            ("delete", 2),
            ("insert", Fact("T", (2, 2))),  # reuses the freed slot
            ("insert", Fact("T", (3, 3))),
            ("delete", 4),
            ("insert", Fact("S", (8, 8))),
        ]
        for kind, arg in steps:
            if kind == "insert":
                assert pipe.submit(kind, arg) == mirror_db.insert(arg)
            else:
                assert pipe.submit(kind, arg) == mirror_db.delete(arg)
            mirror_sess.index()
        pipe.flush()
        _assert_identical(session, database, mirror_sess, mirror_db)

    def test_out_of_band_mutations_resync_between_drains(self):
        database = _seeded(3)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        pipe.submit("insert", Fact("T", (1, 1)))
        pipe.flush()
        # With nothing pending, direct database writes are allowed; the
        # next submission picks the allocator back up from the live state.
        database.delete(0)
        reused = pipe.submit("insert", Fact("R", ("back", "b")))
        assert reused == 0
        pipe.flush()
        assert database[0] == Fact("R", ("back", "b"))

    def test_stolen_reservation_is_an_ingest_error(self):
        database = _seeded(3)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        reserved = pipe.submit("insert", Fact("T", (1, 1)))
        # Violating the single-writer contract: an out-of-band insert
        # takes the reserved identifier while the event is pending.
        database.delete(reserved - 1) if reserved - 1 in database else None
        database._next_id = reserved
        database.insert(Fact("T", (9, 9)))
        with pytest.raises(IngestError, match="already taken"):
            pipe.flush()


class TestBackpressure:
    def test_try_submit_refuses_at_capacity(self):
        database = _seeded(0)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest(capacity=3)
        ids = [pipe.try_submit("insert", Fact("T", (k, k))) for k in range(3)]
        assert all(identifier is not None for identifier in ids)
        refused = pipe.try_submit("insert", Fact("T", (99, 99)))
        assert refused is None
        assert pipe.pending == 3  # nothing buffered, nothing half-mirrored
        # Coalescing submissions never grow the buffer, so they are
        # admitted even at capacity.
        assert pipe.try_submit("update", ids[0], "X", 123) is True
        assert pipe.try_submit("delete", ids[1]) is True
        assert pipe.pending == 2

    def test_submit_blocks_by_draining(self):
        database = _seeded(0)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest(capacity=2)
        for k in range(7):
            pipe.submit("insert", Fact("T", (k, k)))
        counters = pipe.counters()
        assert counters["backpressure_flushes"] >= 2
        assert counters["max_pending"] <= 2
        pipe.flush()
        assert len(database) == 7

    def test_capacity_validated(self):
        session = MeasurementSession(_constraints(), _seeded(1))
        with pytest.raises(ValueError, match="capacity"):
            session.ingest(capacity=0)


class TestStalenessReads:
    def test_read_within_bound_skips_flush(self):
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        generation = session.topology.generation
        for k in range(5):
            pipe.submit("insert", Fact("R", (f"a{k}", "dup")))
        read = pipe.read(MEASURES, max_staleness_events=5)
        assert isinstance(read, IngestRead)
        assert read.flushed is False
        assert read.staleness == 5
        assert read.generation == generation
        assert pipe.counters()["flushes"] == 0

    def test_read_over_bound_forces_flush(self):
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        for k in range(5):
            pipe.submit("insert", Fact("R", ("a0", f"conflict{k}")))
        read = pipe.read(MEASURES, max_staleness_events=2)
        assert read.flushed is True
        assert read.staleness <= 2
        # The values are served post-drain: identical to a fresh session.
        with MeasurementSession(_constraints(), database) as fresh:
            assert read.values == fresh.measure_all(MEASURES)

    def test_read_rejects_negative_bound(self):
        session = MeasurementSession(_constraints(), _seeded(1))
        pipe = session.ingest()
        with pytest.raises(ValueError, match="max_staleness_events"):
            pipe.read((), max_staleness_events=-1)

    def test_sharded_drains_only_backlogged_shards(self):
        database = _seeded()
        session = ShardedMeasurementSession(_constraints(), database)
        pipe = session.ingest()
        generations = [shard.topology.generation for shard in session.shards]
        for k in range(4):
            pipe.submit("insert", Fact("R", ("a0", f"c{k}")))  # shard 0
        pipe.submit("insert", Fact("S", (0, 99)))  # shard 1
        assert pipe.pending_per_shard()[:2] == [4, 1]
        read = pipe.read((), max_staleness_events=1)
        # Only the over-watermark shard drained: S keeps its pending
        # event, its topology generation and every memoized stream.
        assert read.flushed is True
        assert pipe.pending_per_shard()[:2] == [0, 1]
        assert session.shards[1].topology.generation == generations[1]
        assert session.shards[0].topology.generation != generations[0]
        assert read.generation == tuple(
            shard.topology.generation for shard in session.shards
        )

    def test_flat_generation_is_an_int_sharded_a_tuple(self):
        database = _seeded()
        flat = MeasurementSession(_constraints(), database).ingest()
        assert isinstance(flat.read(()).generation, int)
        database2 = _seeded()
        sharded = ShardedMeasurementSession(_constraints(), database2).ingest()
        generation = sharded.read(()).generation
        assert isinstance(generation, tuple)
        assert len(generation) == 2


class TestFlushResidue:
    """Satellite: a coalesced insert+delete must leave zero residue."""

    @pytest.mark.parametrize("flavor", _flavors())
    def test_insert_delete_leaves_no_touching_or_bucket_residue(self, flavor):
        database = _seeded()
        session = flavor(_constraints(), database)
        session.index()
        pipe = session.ingest()
        identifier = pipe.submit("insert", Fact("R", ("a0", "hot")))
        assert pipe.submit("delete", identifier) is True
        pipe.flush()
        session.index()
        shards = getattr(session, "shards", [session])
        for shard in shards:
            assert identifier not in shard._touching
            for buckets in shard._eq_index._maps.values():
                for bucket in buckets.values():
                    assert identifier not in bucket
            for store in shard._witnesses:
                for violation in store.ordered():
                    assert identifier not in violation.fact_ids

    def test_session_level_insert_then_delete_before_flush(self):
        # The raw-session flavor of the same hazard: _on_change applies
        # eq-index/column updates eagerly but witness retraction waits
        # for the flush — the dirty id must fold away completely.
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        session.index()
        generation = session.topology.generation
        identifier = database.insert(Fact("R", ("a0", "hot")))
        database.delete(identifier)
        session.index()
        assert identifier not in session._touching
        for buckets in session._eq_index._maps.values():
            for bucket in buckets.values():
                assert identifier not in bucket
        assert session.topology.generation == generation

    def test_bound_fact_updated_then_deleted(self):
        database = _seeded(0)
        session = MeasurementSession(_constraints(), database)
        pipe = session.ingest()
        a = database.insert(Fact("R", ("k", "v1")))
        b = database.insert(Fact("R", ("k", "v2")))  # conflicts with a
        session.index()
        assert a in session._touching and b in session._touching
        assert pipe.submit("update", b, "B", "v3") is True
        assert pipe.submit("delete", b) is True
        pipe.flush()
        session.index()
        assert b not in session._touching
        assert a not in session._touching  # its only witness retracted
        for buckets in session._eq_index._maps.values():
            for bucket in buckets.values():
                assert b not in bucket
        with MeasurementSession(_constraints(), database) as fresh:
            assert session.index().mi_sets == fresh.index().mi_sets


class TestGenerationStability:
    """Satellite: net-empty flushes advance nothing, keep _spec_base."""

    @pytest.mark.parametrize("flavor", _flavors())
    def test_netted_batch_preserves_generation_and_spec_base(self, flavor):
        database = _seeded()
        session = flavor(_constraints(), database)
        base = session._speculation_base()
        pipe = session.ingest()
        original = database[0].values[1]
        pipe.submit("update", 0, "B", "detour")
        pipe.submit("update", 0, "B", original)  # nets back to base
        identifier = pipe.submit("insert", Fact("S", (50, 50)))
        pipe.submit("delete", identifier)  # nets out
        assert pipe.flush() == 0
        assert session._speculation_base() is base

    def test_net_events_with_empty_witness_delta_keep_generation(self):
        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        base = session._speculation_base()
        generation = session.topology.generation
        pipe = session.ingest()
        # T is mentioned by no constraint: real net events, empty delta.
        pipe.submit("insert", Fact("T", (123, 456)))
        assert pipe.flush() == 1
        assert session.topology.generation == generation
        assert session._speculation_base() is base


class TestObservability:
    @pytest.mark.parametrize("flavor", _flavors())
    def test_stats_surface_ingest_counters(self, flavor):
        database = _seeded()
        session = flavor(_constraints(), database)
        assert "ingest" not in session.stats()
        pipe = session.ingest(capacity=16)
        pipe.submit("update", 0, "B", "x")
        pipe.submit("update", 0, "B", "y")
        pipe.flush()
        counters = session.stats()["ingest"]
        assert counters["capacity"] == 16
        assert counters["events_submitted"] == 2
        assert counters["events_coalesced"] == 1
        assert counters["flushes"] == 1
        assert counters["max_pending"] == 1
        assert counters["flush_p50"] is not None
        assert counters["flush_p99"] >= counters["flush_p50"]
        pipe.close()
        assert "ingest" not in session.stats()

    def test_close_drains_and_context_manager(self):
        database = _seeded(2)
        session = MeasurementSession(_constraints(), database)
        with session.ingest() as pipe:
            pipe.submit("insert", Fact("T", (5, 5)))
        assert pipe.pending == 0
        assert any(fact == Fact("T", (5, 5)) for fact in database.facts())
        assert "ingest" not in session.stats()


def _random_stream_step(rng: random.Random, pipe, mirror_db, mirror_sess):
    """One lockstep submission on the pipeline and the eager mirror."""
    roll = rng.random()
    if roll < 0.35:
        relation = rng.choice(("R", "S", "T"))
        if relation == "R":
            fact = Fact("R", (f"a{rng.randrange(6)}", f"b{rng.randrange(4)}"))
        elif relation == "S":
            fact = Fact("S", (rng.randrange(5), rng.randrange(4)))
        else:
            fact = Fact("T", (rng.randrange(30), rng.randrange(30)))
        assert pipe.submit("insert", fact) == mirror_db.insert(fact)
    elif roll < 0.65:
        identifier = rng.randrange(0, 60)
        attribute = None
        target = mirror_db.get(identifier)
        if target is not None:
            attribute = {"R": "B", "S": "V", "T": "Y"}[target.relation]
            value = (
                f"b{rng.randrange(4)}"
                if target.relation == "R"
                else rng.randrange(6)
            )
        else:
            attribute, value = "B", "b0"
        assert pipe.submit(
            "update", identifier, attribute, value
        ) == mirror_db.update(identifier, attribute, value)
    else:
        identifier = rng.randrange(0, 60)
        assert pipe.submit("delete", identifier) == mirror_db.delete(identifier)
    mirror_sess.index()  # the eager twin flushes after every event


class TestLockstepConformance:
    """Randomized coalesced == per-event parity over interleaved histories."""

    @pytest.mark.parametrize("flavor", _flavors())
    def test_lockstep_parity(self, flavor, case_rng):
        database = _seeded()
        session = flavor(_constraints(), database)
        mirror_db, mirror_sess = _mirror(database)
        pipe = session.ingest(capacity=32)
        for step in range(160):
            _random_stream_step(case_rng, pipe, mirror_db, mirror_sess)
            if case_rng.random() < 0.15:
                bound = case_rng.choice([0, 3, 10])
                read = pipe.read((), max_staleness_events=bound)
                assert read.staleness <= bound
            if step % 40 == 39:
                pipe.flush()
                _assert_identical(session, database, mirror_sess, mirror_db)
        pipe.flush()
        _assert_identical(session, database, mirror_sess, mirror_db)

    @pytest.mark.slow
    @pytest.mark.parametrize("flavor", _flavors())
    @pytest.mark.parametrize("round_", range(4))
    def test_lockstep_parity_soak(self, flavor, round_, case_rng):
        database = _seeded(20)
        session = flavor(_constraints(), database)
        mirror_db, mirror_sess = _mirror(database)
        pipe = session.ingest(capacity=64)
        for step in range(600):
            _random_stream_step(case_rng, pipe, mirror_db, mirror_sess)
            if case_rng.random() < 0.08:
                bound = case_rng.choice([0, 5, 25])
                read = pipe.read(MEASURES, max_staleness_events=bound)
                assert read.staleness <= bound
            if step % 150 == 149:
                pipe.flush()
                _assert_identical(session, database, mirror_sess, mirror_db)
        pipe.flush()
        _assert_identical(session, database, mirror_sess, mirror_db)


class TestSpeculateBatchDirtyMarks:
    """Satellite regression: batch rollback marks vs outside mutations."""

    def test_flat_out_of_band_marks_survive_batch(self):
        from repro.repairs.operations import UpdateOperation

        database = _seeded()
        session = MeasurementSession(_constraints(), database)
        session.index()
        candidates = [
            [UpdateOperation(0, "B", "x")],
            [UpdateOperation(1, "V", 3)],
        ]
        original_savepoint = session.savepoint
        calls = {"n": 0}

        def savepoint_with_interleaved_commit():
            calls["n"] += 1
            if calls["n"] == 2:
                # A concurrent producer commits between candidates: its
                # dirty mark is outside the batch's balanced pairs.
                database.insert(Fact("R", ("a0", "intruder")))
            return original_savepoint()

        session.savepoint = savepoint_with_interleaved_commit
        session.speculate_batch(candidates, MEASURES[:1])
        session.savepoint = original_savepoint
        # Post-batch, the committed out-of-band delta must still flush:
        # the index is bit-identical to a from-scratch build.
        with MeasurementSession(_constraints(), database) as fresh:
            assert session.index().mi_sets == fresh.index().mi_sets
            assert session.index().per_constraint == fresh.index().per_constraint
            assert session.measure_all(MEASURES) == fresh.measure_all(MEASURES)

    def test_sharded_out_of_band_marks_survive_batch(self):
        from repro.repairs.operations import UpdateOperation

        database = _seeded()
        session = ShardedMeasurementSession(_constraints(), database)
        session.index()
        # Candidates touch only shard 0 (relation R); the out-of-band
        # commit lands on shard 1 (relation S), which the old wholesale
        # clear silently wiped.
        candidates = [
            [UpdateOperation(0, "B", "x")],
            [UpdateOperation(0, "B", "y")],
        ]
        original_savepoint = session.savepoint
        calls = {"n": 0}

        def savepoint_with_interleaved_commit():
            calls["n"] += 1
            if calls["n"] == 2:
                database.insert(Fact("S", (0, 77)))
            return original_savepoint()

        session.savepoint = savepoint_with_interleaved_commit
        session.speculate_batch(candidates, MEASURES[:1])
        session.savepoint = original_savepoint
        with MeasurementSession(_constraints(), database) as fresh:
            assert session.index().mi_sets == fresh.index().mi_sets
            assert session.index().per_constraint == fresh.index().per_constraint
            assert session.measure_all(MEASURES) == fresh.measure_all(MEASURES)
