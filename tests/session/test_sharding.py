"""Sharded == unsharded conformance, constraint routing, and fan-out.

The anchor invariant is differential: over randomized multi-relation
schemas, DC sets (including cross-relation DCs that force merged shards)
and interleaved insert/delete/update/speculate histories, a
:class:`ShardedMeasurementSession` must return **bit-identical**
``measure_all`` values, ``index()`` content and ``speculate_batch`` scores
to the flat :class:`MeasurementSession` over the same database — the same
randomized-history style black-box checking used for snapshot-isolation
conformance, applied to the shard/unsharded equivalence contract.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.constraints.base import ComparisonOp
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.measures import TABLE2_MEASURES, available_measures, make_measure
from repro.relational import Database, Fact, Schema
from repro.repairs.operations import (
    DeleteOperation,
    InsertOperation,
    UpdateOperation,
    apply_sequence,
)
from repro.session import (
    MeasurementSession,
    ShardedMeasurementSession,
    make_session,
    relation_groups,
)
from repro.violations import build_violation_index, lower_constraints


def _cross_dc(left: str, right: str) -> DenialConstraint:
    """An FD-like DC linking two relations on A (forces a merged shard)."""
    return DenialConstraint(
        [("x", left), ("y", right)],
        [
            Predicate(Term.col("x", "A"), ComparisonOp.EQ, Term.col("y", "A")),
            Predicate(Term.col("x", "B"), ComparisonOp.NE, Term.col("y", "B")),
        ],
        name=f"cross_{left}_{right}",
    )


def _random_setup(rng: random.Random) -> tuple[Schema, list]:
    """A random multi-relation schema with a random (routable) DC set."""
    relations = [f"R{k}" for k in range(rng.randint(2, 4))]
    schema = Schema.from_dict(
        {relation: ["A", "B", "C"] for relation in relations}
    )
    constraints: list = []
    for relation in relations:
        constraints.append(FunctionalDependency(relation, {"A"}, {"B"}))
        if rng.random() < 0.5:
            constraints.append(
                parse_dc("not(t.A > t.C)", relation, name=f"ord_{relation}")
            )
    if len(relations) >= 2 and rng.random() < 0.6:
        left, right = rng.sample(relations, 2)
        constraints.append(_cross_dc(left, right))
    return schema, constraints


def _random_fact(rng: random.Random, relation: str) -> Fact:
    return Fact(
        relation, (rng.randint(0, 4), rng.choice("xyz"), rng.randint(0, 8))
    )


def _random_mutation(rng: random.Random, database: Database, relations) -> None:
    identifiers = database.ids()
    roll = rng.random()
    if roll < 0.5 and identifiers:
        attribute = rng.choice(["A", "B", "C"])
        value = rng.randint(0, 6) if rng.random() < 0.7 else rng.choice("xyz")
        database.update(rng.choice(identifiers), attribute, value)
    elif roll < 0.75 or not identifiers:
        database.insert(_random_fact(rng, rng.choice(relations)))
    else:
        database.delete(rng.choice(identifiers))


def _random_candidates(
    rng: random.Random, database: Database, relations, count: int
) -> list[list]:
    candidates = []
    for _ in range(count):
        operations = []
        for _ in range(rng.randint(1, 3)):
            identifiers = database.ids()
            roll = rng.random()
            if roll < 0.4 and identifiers:
                operations.append(DeleteOperation(rng.choice(identifiers)))
            elif roll < 0.8 and identifiers:
                operations.append(
                    UpdateOperation(
                        rng.choice(identifiers),
                        rng.choice(["A", "B", "C"]),
                        rng.randint(0, 6),
                    )
                )
            else:
                operations.append(
                    InsertOperation(_random_fact(rng, rng.choice(relations)))
                )
        candidates.append(operations)
    return candidates


def _assert_index_identical(flat: MeasurementSession, sharded) -> None:
    fi, si = flat.index(), sharded.index()
    assert fi.mi_sets == si.mi_sets
    assert [
        (violation.fact_ids, violation.constraint.name)
        for violation in fi.per_constraint
    ] == [
        (violation.fact_ids, violation.constraint.name)
        for violation in si.per_constraint
    ]
    assert [c.mi_sets for c in fi.components()] == [
        c.mi_sets for c in si.components()
    ]
    assert [
        {(v.fact_ids, v.constraint.name) for v in c.per_constraint}
        for c in fi.components()
    ] == [
        {(v.fact_ids, v.constraint.name) for v in c.per_constraint}
        for c in si.components()
    ]


class TestRandomizedConformance:
    @pytest.mark.slow
    @pytest.mark.parametrize("case", [0, 1, 2, 3])
    def test_interleaved_histories_bit_identical(self, case, case_rng):
        """measure_all, index() and speculate_batch over mixed histories."""
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [
                _random_fact(rng, rng.choice(relations))
                for _ in range(rng.randint(20, 35))
            ],
        )
        measures = [make_measure(name) for name in TABLE2_MEASURES]
        with MeasurementSession(constraints, database) as flat:
            with ShardedMeasurementSession(constraints, database) as sharded:
                for step in range(60):
                    _random_mutation(rng, database, relations)
                    if step % 3 == 0:
                        assert flat.measure_all(measures) == sharded.measure_all(
                            measures
                        ), step
                        _assert_index_identical(flat, sharded)
                        assert (
                            set(flat.problematic_facts())
                            == sharded.problematic_facts()
                        ), step
                        assert flat.is_consistent() == sharded.is_consistent()
                    if step % 10 == 0:
                        candidates = _random_candidates(
                            rng, database, relations, 4
                        )
                        batch = sharded.speculate_batch(candidates, measures)
                        assert batch == flat.speculate_batch(
                            candidates, measures
                        ), step
                        # Spot-check one candidate against copy-apply-rebuild.
                        expected = {
                            measure.name: measure.value(
                                constraints,
                                apply_sequence(database, candidates[0]),
                            )
                            for measure in measures
                        }
                        assert batch[0] == expected, step

    @pytest.mark.slow
    @pytest.mark.parametrize("case", [0, 1])
    def test_full_registry_speculation(self, case, case_rng):
        """Whole-database measures force the generic fallback; still equal.

        Small database: the registry includes the exact update-repair
        measure, which is exponential in the problematic-fact count.
        """
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(8)],
        )
        registry = [make_measure(name) for name in available_measures()]
        with MeasurementSession(constraints, database) as flat:
            with ShardedMeasurementSession(constraints, database) as sharded:
                for _ in range(3):
                    candidates = _random_candidates(rng, database, relations, 2)
                    assert sharded.speculate_batch(
                        candidates, registry
                    ) == flat.speculate_batch(candidates, registry)
                    assert [
                        sharded.speculate(operations, registry)
                        for operations in candidates
                    ] == [
                        flat.speculate(operations, registry)
                        for operations in candidates
                    ]
                    # Keep the database small: the update-repair measure is
                    # exponential, and random growth would make the runtime
                    # seed-dependent.
                    if len(database) >= 8:
                        database.delete(rng.choice(database.ids()))
                    else:
                        _random_mutation(rng, database, relations)

    def test_short_history_fast_lane(self, case_rng):
        """A trimmed conformance pass that stays in CI's fast lane."""
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(18)],
        )
        measures = [make_measure(name) for name in ("I_MI", "I_P", "I_MC")]
        with MeasurementSession(constraints, database) as flat:
            with ShardedMeasurementSession(constraints, database) as sharded:
                for step in range(12):
                    _random_mutation(rng, database, relations)
                    assert flat.measure_all(measures) == sharded.measure_all(
                        measures
                    ), step
                _assert_index_identical(flat, sharded)
                candidates = _random_candidates(rng, database, relations, 3)
                assert sharded.speculate_batch(
                    candidates, measures
                ) == flat.speculate_batch(candidates, measures)

    def test_sharded_session_attached_mid_history(self, case_rng):
        """A sharded session built over a dirty mid-stream state conforms."""
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(15)],
        )
        with MeasurementSession(constraints, database) as flat:
            for _ in range(10):
                _random_mutation(rng, database, relations)
            with ShardedMeasurementSession(constraints, database) as sharded:
                for _ in range(10):
                    _random_mutation(rng, database, relations)
                _assert_index_identical(flat, sharded)


class TestRouting:
    def _schema(self) -> Schema:
        return Schema.from_dict(
            {name: ["A", "B", "C"] for name in ("R0", "R1", "R2", "R3")}
        )

    def test_single_relation_dcs_get_singleton_shards(self):
        schema = self._schema()
        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            FunctionalDependency("R1", {"A"}, {"B"}),
            FunctionalDependency("R2", {"A"}, {"B"}),
        ]
        dcs = lower_constraints(constraints, schema)
        assert relation_groups(dcs, schema) == [("R0",), ("R1",), ("R2",)]

    def test_cross_relation_dc_merges_shards(self):
        schema = self._schema()
        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            FunctionalDependency("R1", {"A"}, {"B"}),
            FunctionalDependency("R2", {"A"}, {"B"}),
            _cross_dc("R0", "R2"),
        ]
        dcs = lower_constraints(constraints, schema)
        assert relation_groups(dcs, schema) == [("R0", "R2"), ("R1",)]

    def test_unconstrained_relations_get_no_shard(self):
        schema = self._schema()
        dcs = lower_constraints(
            [FunctionalDependency("R1", {"A"}, {"B"})], schema
        )
        assert relation_groups(dcs, schema) == [("R1",)]

    def test_every_dc_routes_to_exactly_one_shard(self):
        schema = self._schema()
        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            _cross_dc("R1", "R3"),
            FunctionalDependency("R3", {"A"}, {"B"}),
        ]
        database = Database(schema)
        with ShardedMeasurementSession(constraints, database) as session:
            assert session.relation_groups == [("R0",), ("R1", "R3")]
            owned = {id(dc) for shard in session.shards for dc in shard.dcs}
            assert owned == {id(dc) for dc in session.dcs}
            assert len(owned) == len(session.dcs)

    def test_explicit_partition_validated(self):
        schema = self._schema()
        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            _cross_dc("R1", "R2"),
        ]
        database = Database(schema)
        session = ShardedMeasurementSession(
            constraints, database, shards=[("R0",), ("R1", "R2")]
        )
        assert session.relation_groups == [("R0",), ("R1", "R2")]
        session.close()
        with pytest.raises(ValueError, match="crosses the shard partition"):
            ShardedMeasurementSession(
                constraints, database, shards=[("R0", "R1"), ("R2",)]
            )
        with pytest.raises(ValueError, match="in two shards"):
            ShardedMeasurementSession(
                constraints, database, shards=[("R0", "R1"), ("R1", "R2")]
            )

    def test_make_session_dispatch(self):
        schema = self._schema()
        constraints = [FunctionalDependency("R0", {"A"}, {"B"})]
        database = Database(schema)
        flat = make_session(constraints, database)
        assert type(flat) is MeasurementSession
        flat.close()
        sharded = make_session(constraints, database, shards="auto")
        assert type(sharded) is ShardedMeasurementSession
        sharded.close()


class TestFanOut:
    def _session(self):
        schema = Schema.from_dict(
            {name: ["A", "B", "C"] for name in ("R0", "R1", "R2")}
        )
        constraints = [
            FunctionalDependency(name, {"A"}, {"B"})
            for name in ("R0", "R1")
        ]
        database = Database.from_facts(
            schema,
            [
                Fact("R0", (1, "x", 0)),
                Fact("R0", (1, "y", 0)),
                Fact("R1", (2, "p", 0)),
                Fact("R1", (2, "q", 0)),
                Fact("R2", (9, "z", 0)),
            ],
        )
        return database, ShardedMeasurementSession(constraints, database)

    def test_events_reach_only_the_owning_shard(self):
        database, session = self._session()
        with session:
            session.index()
            database.update(0, "B", "y")  # an R0 fact
            shard_r0 = session._shard_of_relation["R0"]
            shard_r1 = session._shard_of_relation["R1"]
            assert shard_r0._dirty == {0}
            assert shard_r1._dirty == set()
            generation_r1 = shard_r1.topology.generation
            session.index()
            assert shard_r1.topology.generation == generation_r1

    def test_unconstrained_relation_events_are_dropped(self):
        database, session = self._session()
        with session:
            session.index()
            database.update(4, "A", 7)  # the R2 fact — no shard indexes R2
            assert session.pending_deltas == 0
            assert len(session.index().mi_sets) == 2

    def test_untouched_shard_parts_are_not_reprobed(self):
        """The per-shard part streams are memoized on shard generation."""
        database, session = self._session()
        with session:
            measure = make_measure("I_MI")
            assert session.measure(measure) == 2.0
            hits, misses = (
                session.component_cache.hits,
                session.component_cache.misses,
            )
            database.update(0, "B", "y")  # resolves the R0 conflict
            assert session.measure(measure) == 1.0
            # The R1 shard's stream was served from the generation-keyed
            # memo: no cache probe (hit or miss) happened for it at all,
            # and the R0 shard's conflict vanished, so nothing was solved.
            assert session.component_cache.misses == misses
            assert session.component_cache.hits == hits

    def test_empty_constraint_set(self):
        schema = Schema.from_dict({"R0": ["A"]})
        database = Database.from_facts(schema, [Fact("R0", (1,))])
        with ShardedMeasurementSession([], database) as session:
            assert session.shards == []
            assert session.is_consistent()
            assert session.index().mi_sets == []
            assert session.measure(make_measure("I_MI")) == 0.0
            assert session.measure(make_measure("I_MC")) == 0.0
            assert session.problematic_facts() == set()


class TestShardedAgainstScratch:
    def test_index_matches_build_violation_index(self, case_rng):
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(25)],
        )
        with ShardedMeasurementSession(constraints, database) as session:
            for _ in range(15):
                _random_mutation(rng, database, relations)
            full = build_violation_index(constraints, database)
            index = session.index()
            assert index.mi_sets == full.mi_sets
            assert {
                (v.fact_ids, v.constraint.name) for v in index.per_constraint
            } == {
                (v.fact_ids, v.constraint.name) for v in full.per_constraint
            }
            assert [c.mi_sets for c in index.components()] == [
                c.mi_sets for c in full.components()
            ]

    def test_refresh_recovers_from_untracked_state(self, case_rng):
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(12)],
        )
        session = ShardedMeasurementSession(constraints, database)
        session.close()
        for _ in range(8):
            _random_mutation(rng, database, relations)
        full = build_violation_index(constraints, database)
        assert session.refresh().mi_sets == full.mi_sets


class TestRefreshInvalidation:
    def test_refresh_then_measure_matches_fresh_session(self, case_rng):
        """refresh() + measure_all must be bit-identical to a fresh session.

        The cross-check: the coordinator's memoized per-shard part streams,
        pseudo index and assembly keys all derive from the retired
        topologies and must not survive the rebuild.
        """
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(18)],
        )
        measures = [
            make_measure(name) for name in ("I_MI", "I_P", "I_MC", "I'_MC")
        ]
        with ShardedMeasurementSession(constraints, database) as session:
            for _ in range(6):
                _random_mutation(rng, database, relations)
            session.measure_all(measures)  # populate every memoized stream
            session.index()
            session.speculate_batch(
                _random_candidates(rng, database, relations, 2), measures
            )
            session.refresh()
            assert all(not memo for memo in session._parts)
            assert session._pseudo is None and session._pseudo_key is None
            assert session._spec_base is None
            with ShardedMeasurementSession(constraints, database) as fresh:
                assert session.measure_all(measures) == fresh.measure_all(
                    measures
                )
                assert session.index().mi_sets == fresh.index().mi_sets
                # ... and the session keeps tracking correctly afterwards.
                for _ in range(4):
                    _random_mutation(rng, database, relations)
                    assert session.measure_all(measures) == fresh.measure_all(
                        measures
                    )

    def test_refresh_rebuilds_equality_index_after_untracked_deltas(self):
        """Untracked mutations must not leave stale hash buckets behind.

        Without rebuilding the equality-column index, a post-refresh delta
        re-enumeration would probe buckets that never saw the untracked
        facts and silently miss witnesses joining with them.
        """
        schema = Schema.from_dict({"R": ["A", "B", "C"]})
        database = Database.from_rows(schema, "R", [(1, "x", 0), (2, "x", 0)])
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        session = MeasurementSession(constraints, database)
        assert session.index().mi_sets == []
        # Simulate an untracked stretch: detach the feed, mutate, reattach.
        database.unsubscribe(session._on_change)
        untracked = database.insert(Fact("R", (3, "x", 0)))
        database.subscribe(session._on_change)
        assert session.refresh().mi_sets == []
        # A tracked delta must now join against the untracked fact.
        tracked = database.insert(Fact("R", (3, "y", 0)))
        full = build_violation_index(constraints, database)
        assert full.mi_sets == [frozenset({untracked, tracked})]
        assert session.index().mi_sets == full.mi_sets


class TestMixedMeasureSpeculation:
    def test_mixed_list_keeps_component_fast_path(self, monkeypatch):
        """Only the whole-database stragglers go through the generic path."""
        import repro.session.sharding as sharding_module

        schema = Schema.from_dict(
            {"T0": ["A", "B", "C"], "T1": ["A", "B", "C"]}
        )
        database = Database.from_facts(
            schema,
            [
                Fact("T0", (1, "x", 0)),
                Fact("T0", (1, "y", 0)),
                Fact("T1", (2, "x", 0)),
                Fact("T1", (2, "y", 0)),
            ],
        )
        constraints = [
            FunctionalDependency(relation, {"A"}, {"B"})
            for relation in ("T0", "T1")
        ]
        mixed = [make_measure(name) for name in ("I_MI", "I_d", "I_R")]
        generic_lists: list[list[str]] = []
        import repro.session.session as session_module

        original = session_module._generic_values

        def spy(session, measures):
            generic_lists.append([measure.name for measure in measures])
            return original(session, measures)

        # Every generic read funnels through _generic_values; the sharded
        # speculate calls its own imported binding, the batch path goes
        # through the session module's helpers.
        monkeypatch.setattr(session_module, "_generic_values", spy)
        monkeypatch.setattr(sharding_module, "_generic_values", spy)
        with ShardedMeasurementSession(constraints, database) as session:
            values = session.speculate([DeleteOperation(0)], mixed)
            batch = session.speculate_batch(
                [[DeleteOperation(0)], [DeleteOperation(2)]], mixed
            )
        assert generic_lists and all(
            names == ["I_d"] for names in generic_lists
        ), generic_lists
        reference = {
            measure.name: measure.value(
                constraints, apply_sequence(database, [DeleteOperation(0)])
            )
            for measure in mixed
        }
        assert values == reference
        assert batch[0] == reference

    def test_mixed_list_value_identity_randomized(self, case_rng):
        """Sharded == flat == copy-apply-rebuild for mixed measure lists."""
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [_random_fact(rng, rng.choice(relations)) for _ in range(10)],
        )
        mixed = [make_measure(name) for name in ("I_MI", "I_d", "I_P", "I_MC")]
        with MeasurementSession(constraints, database) as flat:
            with ShardedMeasurementSession(constraints, database) as sharded:
                for _ in range(3):
                    candidates = _random_candidates(
                        rng, database, relations, 2
                    )
                    flat_batch = flat.speculate_batch(candidates, mixed)
                    assert (
                        sharded.speculate_batch(candidates, mixed)
                        == flat_batch
                    )
                    for operations, values in zip(candidates, flat_batch):
                        assert sharded.speculate(operations, mixed) == values
                        assert values == {
                            measure.name: measure.value(
                                constraints,
                                apply_sequence(database, operations),
                            )
                            for measure in mixed
                        }
                    _random_mutation(rng, database, relations)


class TestStatsBackendMerge:
    """Regression: disagreeing shard backends must surface, not vanish."""

    def _session(self):
        schema = Schema.from_dict({"R": ["A", "B", "C"], "S": ["A", "B", "C"]})
        database = Database.from_facts(
            schema,
            [Fact(relation, (k, k, k)) for relation in ("R", "S") for k in range(3)],
        )
        constraints = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("S", {"A"}, {"B"}),
        ]
        return ShardedMeasurementSession(constraints, database, engine="batch")

    def test_agreeing_shards_report_the_backend(self):
        session = self._session()
        backends = {shard.stats()["vector_backend"] for shard in session.shards}
        assert len(backends) == 1
        assert session.stats()["vector_backend"] == backends.pop()

    def test_disagreeing_shards_report_mixed(self):
        class _StubColumns:
            backend = "stub"

        session = self._session()
        native = session.shards[1].stats()["vector_backend"]
        session.shards[0]._columns = _StubColumns()
        merged = session.stats()["vector_backend"]
        assert merged == "mixed:" + ",".join(sorted(["stub", native]))

    def test_shard_without_columns_reports_mixed_none(self):
        session = self._session()
        native = session.shards[1].stats()["vector_backend"]
        session.shards[0]._columns = None
        merged = session.stats()["vector_backend"]
        assert merged == "mixed:" + ",".join(sorted(["none", native]))
        # ...which is distinguishable from "no columnar backend anywhere".
        for shard in session.shards:
            shard._columns = None
        assert session.stats()["vector_backend"] is None
