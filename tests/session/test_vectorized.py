"""numpy kernels == list kernels == probe, bit-for-bit.

The vectorized column backend (:mod:`repro.session.vectorized`) is held to
the same differential contract as the batch engine itself: over randomized
DC sets and interleaved histories, sessions running the numpy-backed store
must maintain witness sets identical to both the list-backed store and the
probe reference — across cold builds, delta maintenance, speculation,
sharding and warm starts.  On top of the 3-way sweeps, targeted suites pin
the hazards the dtype ladder and dictionary encoding introduce: None/NaN
cells, bool columns, > 2**53 integers against floats, mixed str/int
columns, dictionary-code stability across savepoint rollback, and
live-fraction compaction.  Everything runs on whatever backends the
process has: the without-numpy CI leg skips the numpy half and still
exercises the fallback path.
"""

from __future__ import annotations

import importlib.util
import math
import sys

import pytest

from repro.constraints.base import ComparisonOp
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.relational import Database, Fact, Schema
from repro.session import (
    MeasurementSession,
    batch_compilable,
    make_column_store,
    make_session,
)
from repro.session.columnar import ColumnStore, _detect_backend

from .test_setbased import (
    _assert_identical,
    _mutate,
    _random_fact,
    _random_instance,
    _random_value,
    _schema,
)

HAS_NUMPY = importlib.util.find_spec("numpy") is not None

#: Column backends available in this process ("list" always is).
BACKENDS = ["list"] + (["numpy"] if HAS_NUMPY else [])

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def _mirror(database: Database) -> Database:
    copy = Database(database.schema)
    for _, fact in database.items():
        copy.insert(Fact(fact.relation, fact.values))
    return copy


def _parity_sessions(database: Database, dcs):
    """(probe, [batch-on-backend...]) sessions over mirrored databases."""
    probe = MeasurementSession([], database, dcs=dcs, engine="probe")
    batches = [
        MeasurementSession(
            [], _mirror(database), dcs=dcs, engine="auto", vector_backend=backend
        )
        for backend in BACKENDS
    ]
    return probe, batches


def _facts_parity(schema: Schema, rows: dict[str, list[tuple]], dcs) -> None:
    """Assert 3-way witness parity over an explicit instance."""
    database = Database(schema)
    for relation, tuples in rows.items():
        for values in tuples:
            database.insert(Fact(relation, values))
    probe, batches = _parity_sessions(database, dcs)
    for session in batches:
        _assert_identical(probe, session)
        session.close()
    probe.close()


class TestThreeWayParity:
    @pytest.mark.parametrize("case", range(4))
    def test_cold(self, case, case_rng):
        rng = case_rng
        _, _, _, database, dcs = _random_instance(rng, rng.randint(20, 80))
        probe, batches = _parity_sessions(database, dcs)
        for session in batches:
            _assert_identical(probe, session)
            session.close()
        probe.close()

    @pytest.mark.parametrize("case", range(3))
    def test_interleaved_histories(self, case, case_rng):
        rng = case_rng
        _, relations, spread, database, dcs = _random_instance(
            rng, rng.randint(15, 40)
        )
        probe, batches = _parity_sessions(database, dcs)
        databases = [database] + [session.database for session in batches]
        for step in range(rng.randint(20, 40)):
            state = rng.getstate()
            for mutated in databases:
                rng.setstate(state)
                _mutate(rng, mutated, relations, spread)
            if step % 5 == 0:
                for session in batches:
                    _assert_identical(probe, session)
        for session in batches:
            _assert_identical(probe, session)
            session.close()
        probe.close()

    @pytest.mark.parametrize("case", range(2))
    def test_speculation(self, case, case_rng):
        from repro.measures import make_measure
        from repro.repairs.operations import DeleteOperation, UpdateOperation

        rng = case_rng
        _, relations, spread, database, dcs = _random_instance(
            rng, rng.randint(15, 40)
        )
        probe, batches = _parity_sessions(database, dcs)
        measure = make_measure("I_MI")
        for _ in range(3):
            identifiers = database.ids()
            if not identifiers:
                break
            candidates = []
            for _ in range(3):
                identifier = rng.choice(identifiers)
                if rng.random() < 0.5:
                    candidates.append([DeleteOperation(identifier)])
                else:
                    candidates.append(
                        [
                            UpdateOperation(
                                identifier,
                                rng.choice(["A", "B"]),
                                _random_value(rng, spread),
                            )
                        ]
                    )
            expected = probe.speculate_batch(candidates, [measure])
            for session in batches:
                assert session.speculate_batch(candidates, [measure]) == expected
            state = rng.getstate()
            for mutated in [database] + [s.database for s in batches]:
                rng.setstate(state)
                _mutate(rng, mutated, relations, spread)
        for session in batches:
            _assert_identical(probe, session)
            session.close()
        probe.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded(self, backend, case_rng):
        from repro.constraints import FunctionalDependency

        rng = case_rng
        relations = ["R0", "R1"]
        schema = _schema(relations)
        database = Database(schema)
        for _ in range(40):
            database.insert(_random_fact(rng, rng.choice(relations), 6))
        constraints = [
            FunctionalDependency("R0", {"A"}, {"B"}),
            FunctionalDependency("R1", {"A"}, {"C"}),
        ]
        sharded = make_session(
            constraints,
            database,
            shards="auto",
            engine="batch",
            vector_backend=backend,
        )
        flat = MeasurementSession(
            constraints, database, subscribe=False, engine="probe"
        )
        assert sharded.index().mi_sets == flat.index().mi_sets
        assert sharded.stats()["vector_backend"] == backend
        for _ in range(15):
            _mutate(rng, database, relations, 6)
        flat.refresh()
        assert sharded.index().mi_sets == flat.index().mi_sets
        sharded.close()
        flat.close()

    @pytest.mark.parametrize("snap_backend", BACKENDS)
    def test_warm_start_across_backends(self, snap_backend, case_rng):
        """A snapshot from either backend warm-starts every backend."""
        rng = case_rng
        relations = ["R0"]
        database = Database(_schema(relations))
        for _ in range(25):
            database.insert(_random_fact(rng, "R0", 5))
        dc = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        with MeasurementSession(
            [], database, dcs=[dc], engine="batch", vector_backend=snap_backend
        ) as source:
            snap = source.snapshot()
        for backend in BACKENDS:
            mirrored = _mirror(database)
            session = MeasurementSession(
                [],
                mirrored,
                dcs=[dc],
                engine="batch",
                vector_backend=backend,
                warm_start=snap,
            )
            assert session.warm_started
            assert session.stats()["constraints"][0]["cold_runs"] == 0
            reference = MeasurementSession(
                [], mirrored, dcs=[dc], subscribe=False, engine="probe"
            )
            _assert_identical(reference, session)
            for _ in range(10):
                _mutate(rng, mirrored, relations, 5)
            reference.refresh()
            _assert_identical(reference, session)
            assert session.stats()["constraints"][0]["delta_runs"] >= 1
            session.close()
            reference.close()


class TestDtypeEdgeCases:
    """Explicit instances that walk the i8 → f8 → obj ladder."""

    def _dc_pair(self, op_bc):
        return [
            DenialConstraint(
                [("t", "R"), ("s", "R")],
                [
                    Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("s", "A")),
                    Predicate(Term.col("t", "B"), op_bc, Term.col("s", "C")),
                ],
                name="pair",
            )
        ]

    @pytest.mark.parametrize(
        "op", [ComparisonOp.EQ, ComparisonOp.NE, ComparisonOp.LT, ComparisonOp.GE]
    )
    def test_none_and_nan_cells(self, op):
        # Each NaN cell is a fresh object: the probe reference's hash
        # index keys buckets by dict equality, where an *identical* NaN
        # object would compare equal to itself (the container identity
        # shortcut) against ``==`` semantics — distinct objects keep both
        # references on the IEEE behavior the kernels implement.
        rows = [
            (1, None, 2),
            (1, float("nan"), float("nan")),
            (1, 2, None),
            (2, float("nan"), 2.0),
            (2, 2.0, float("nan")),
            (2, None, None),
            (1, 3, 2),
        ]
        _facts_parity(_schema(["R"]), {"R": rows}, self._dc_pair(op))

    @pytest.mark.parametrize(
        "op", [ComparisonOp.EQ, ComparisonOp.NE, ComparisonOp.LT, ComparisonOp.GE]
    )
    def test_mixed_str_int_columns(self, op):
        rows = [
            (1, "x", 2),
            (1, 2, "x"),
            (1, "x", "x"),
            (2, 2, 2),
            (2, "y", 2.0),
            (2, None, "y"),
        ]
        _facts_parity(_schema(["R"]), {"R": rows}, self._dc_pair(op))

    @pytest.mark.parametrize(
        "op", [ComparisonOp.EQ, ComparisonOp.NE, ComparisonOp.LT, ComparisonOp.GE]
    )
    def test_bool_and_bigint_cells(self, op):
        """bools, > 2**63 ints and 2**53-adjacent int/float near-misses.

        ``2**53`` and ``float(2**53)`` must compare equal while
        ``2**53 + 1`` and ``float(2**53 + 1)`` must not — the rounded
        float equals ``2**53``, which only exact (non-f8) comparison
        preserves.
        """
        big = 2**53
        rows = [
            (1, True, 1),
            (1, False, True),
            (1, 1, True),
            (2, big + 1, float(big + 1)),
            (2, float(big), big),
            (2, 2**64, 2**64 + 1),
            (3, -(2**63) - 1, 7),
            (3, big + 1, big + 1),
        ]
        _facts_parity(_schema(["R"]), {"R": rows}, self._dc_pair(op))

    def test_constant_predicates_on_promoted_columns(self):
        dcs = [
            DenialConstraint(
                [("t", "R")],
                [
                    Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.const("x")),
                    Predicate(Term.col("t", "C"), ComparisonOp.GT, Term.const(1)),
                ],
                name="consts",
            )
        ]
        rows = [
            (1, "x", 2),
            (1, 2, 2.5),
            (1, None, None),
            (2, float("nan"), 3),
            (2, True, 2**60),
        ]
        _facts_parity(_schema(["R"]), {"R": rows}, dcs)

    def test_late_promotion_under_updates(self, case_rng):
        """A column that starts i8 and only later sees floats/strings."""
        rng = case_rng
        database = Database(_schema(["R"]))
        for k in range(30):
            database.insert(Fact("R", (k % 5, k % 7, k % 3)))
        dcs = self._dc_pair(ComparisonOp.LT)
        probe, batches = _parity_sessions(database, dcs)
        databases = [database] + [session.database for session in batches]
        odd_values = [2.5, "x", float("nan"), 2**60, None, True]
        for step, value in enumerate(odd_values * 3):
            state = rng.getstate()
            for mutated in databases:
                rng.setstate(state)
                identifier = rng.choice(mutated.ids())
                mutated.update(identifier, rng.choice(["A", "B", "C"]), value)
            for session in batches:
                _assert_identical(probe, session)
        for session in batches:
            session.close()
        probe.close()


class TestDictionaryAndCompaction:
    @needs_numpy
    def test_codes_stable_under_rollback(self, case_rng):
        """Savepoint rollback must not re-map any existing value's code."""
        from repro.measures import make_measure
        from repro.repairs.operations import UpdateOperation

        rng = case_rng
        database = Database(_schema(["R0"]))
        for _ in range(20):
            database.insert(_random_fact(rng, "R0", 5))
        dc = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        session = MeasurementSession(
            [], database, dcs=[dc], engine="batch", vector_backend="numpy"
        )
        session.index()
        store = session._columns
        dictionary = store.column("R0", "A").dict_class
        before = dict(dictionary.codes)
        # Speculate updates that introduce brand-new join values, then
        # roll back; dedicated codes were assigned inside the savepoint.
        candidates = [
            [UpdateOperation(identifier, "A", 1000 + k)]
            for k, identifier in enumerate(database.ids()[:4])
        ]
        session.speculate_batch(candidates, [make_measure("I_MI")])
        after = dict(dictionary.codes)
        for value, code in before.items():
            assert after[value] == code
        assert all(1000 + k in after for k in range(4))
        # The rolled-back store still answers identically to a fresh probe.
        reference = MeasurementSession(
            [], database, dcs=[dc], subscribe=False, engine="probe"
        )
        _assert_identical(reference, session)
        session.close()
        reference.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compaction_preserves_parity(self, backend, case_rng, monkeypatch):
        """Delete-heavy histories cross the live-fraction threshold."""
        from repro.session.columnar import ColumnStore as ListStore

        monkeypatch.setattr(ListStore, "COMPACT_MIN_SLOTS", 16)
        if HAS_NUMPY:
            from repro.session.vectorized import VectorColumnStore

            monkeypatch.setattr(VectorColumnStore, "COMPACT_MIN_SLOTS", 16)
        rng = case_rng
        relations = ["R0"]
        database = Database(_schema(relations))
        for _ in range(60):
            database.insert(_random_fact(rng, "R0", 8))
        dc = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        probe = MeasurementSession([], database, dcs=[dc], engine="probe")
        batch = MeasurementSession(
            [],
            _mirror(database),
            dcs=[dc],
            engine="batch",
            vector_backend=backend,
        )
        databases = [database, batch.database]
        # Alternate delete waves (dropping live fraction below 1/2) with
        # insert/update waves, checking parity after every wave.
        for wave in range(6):
            state = rng.getstate()
            for mutated in databases:
                rng.setstate(state)
                identifiers = mutated.ids()
                if wave % 2 == 0:
                    for identifier in identifiers[: len(identifiers) * 2 // 3]:
                        mutated.delete(identifier)
                else:
                    for _ in range(25):
                        _mutate(rng, mutated, relations, 8)
            _assert_identical(probe, batch)
        # At least one compaction actually fired on the batch store: the
        # initial 60 slots can only shrink through _compact (rows are
        # tombstoned in place otherwise).
        relation = batch._columns.relation("R0")
        slots = relation.n if backend == "numpy" else len(relation.ids)
        assert slots < 60
        probe.close()
        batch.close()


class TestLoneVariableShapes:
    def _lone_dc(self):
        return DenialConstraint(
            [("t", "R0"), ("u", "R0"), ("v", "R1")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("u", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("u", "B")),
                Predicate(Term.col("v", "C"), ComparisonOp.EQ, Term.const(1)),
            ],
            name="lone",
        )

    def test_compilable_classification(self):
        assert batch_compilable(self._lone_dc())
        # Width-2, both variables constant-bound only: still one lone
        # disconnected variable — eligible.
        both_const = DenialConstraint(
            [("t", "R0"), ("s", "R1")],
            [
                Predicate(Term.col("t", "B"), ComparisonOp.GT, Term.const(2)),
                Predicate(Term.col("s", "C"), ComparisonOp.EQ, Term.const(1)),
            ],
            name="both_const",
        )
        assert batch_compilable(both_const)
        # A cross-variable inequality binds both components: not eligible.
        crossing = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "B"), ComparisonOp.LT, Term.col("t2", "B")),
                Predicate(Term.col("t", "C"), ComparisonOp.EQ, Term.const(1)),
                Predicate(Term.col("t2", "C"), ComparisonOp.EQ, Term.const(2)),
            ],
            name="crossing",
        )
        assert not batch_compilable(crossing)
        # Three components stay out of scope.
        three = DenialConstraint(
            [("t", "R0"), ("u", "R0"), ("v", "R1")],
            [
                Predicate(Term.col("t", "B"), ComparisonOp.EQ, Term.const(1)),
                Predicate(Term.col("u", "B"), ComparisonOp.EQ, Term.const(2)),
                Predicate(Term.col("v", "C"), ComparisonOp.EQ, Term.const(3)),
            ],
            name="three",
        )
        assert not batch_compilable(three)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lone_parity_and_pin_on_lone_delta(self, backend, case_rng):
        rng = case_rng
        relations = ["R0", "R1"]
        database = Database(_schema(relations))
        for _ in range(40):
            database.insert(_random_fact(rng, rng.choice(relations), 4))
        dc = self._lone_dc()
        probe = MeasurementSession([], database, dcs=[dc], engine="probe")
        batch = MeasurementSession(
            [],
            _mirror(database),
            dcs=[dc],
            engine="batch",
            vector_backend=backend,
        )
        assert batch.stats()["constraints"][0]["engine"] == "batch"
        _assert_identical(probe, batch)
        # Mutations confined to the lone variable's relation seed the
        # delta pass on the keyless pin.
        r1_ids = [
            identifier
            for identifier, fact in database.items()
            if fact.relation == "R1"
        ]
        for k, identifier in enumerate(r1_ids[:6]):
            for mutated in (database, batch.database):
                if k % 2 == 0:
                    mutated.update(identifier, "C", 1 if k % 4 == 0 else 3)
                else:
                    mutated.delete(identifier)
            _assert_identical(probe, batch)
        for _ in range(4):
            value = (2, 2, 1)
            for mutated in (database, batch.database):
                mutated.insert(Fact("R1", value))
            _assert_identical(probe, batch)
        assert batch.stats()["constraints"][0]["delta_runs"] >= 1
        probe.close()
        batch.close()


class TestBackendSelection:
    def test_make_column_store(self):
        schema = _schema(["R0"])
        assert make_column_store(schema, "list").backend == "list"
        assert isinstance(make_column_store(schema, "list"), ColumnStore)
        if HAS_NUMPY:
            assert make_column_store(schema, "numpy").backend == "numpy"
        with pytest.raises(ValueError, match="unknown column backend"):
            make_column_store(schema, "duckdb")

    def test_detect_backend_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "list")
        assert _detect_backend() == "list"
        monkeypatch.setenv("REPRO_VECTOR", "banana")
        with pytest.raises(ValueError, match="REPRO_VECTOR"):
            _detect_backend()
        if HAS_NUMPY:
            monkeypatch.setenv("REPRO_VECTOR", "numpy")
            assert _detect_backend() == "numpy"

    def test_detect_backend_without_numpy(self, monkeypatch):
        """Simulate the numpy-absent install: auto falls back, numpy raises."""
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.setenv("REPRO_VECTOR", "auto")
        assert _detect_backend() == "list"
        monkeypatch.setenv("REPRO_VECTOR", "numpy")
        with pytest.raises(RuntimeError, match="numpy is not importable"):
            _detect_backend()

    def test_stats_surface_backend(self, case_rng):
        rng = case_rng
        database = Database(_schema(["R0"]))
        for _ in range(10):
            database.insert(_random_fact(rng, "R0", 4))
        dc = DenialConstraint(
            [("t", "R0"), ("t2", "R0")],
            [
                Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("t2", "A")),
                Predicate(Term.col("t", "B"), ComparisonOp.NE, Term.col("t2", "B")),
            ],
            name="fd",
        )
        for backend in BACKENDS:
            session = MeasurementSession(
                [],
                database,
                dcs=[dc],
                subscribe=False,
                engine="batch",
                vector_backend=backend,
            )
            stats = session.stats()
            assert stats["vector_backend"] == backend
            assert stats["constraints"][0]["backend"] == backend
            session.close()
        probe = MeasurementSession(
            [], database, dcs=[dc], subscribe=False, engine="probe"
        )
        stats = probe.stats()
        assert stats["vector_backend"] is None
        assert stats["constraints"][0]["backend"] is None
        probe.close()
