"""MeasurementSession: incremental maintenance and component-wise measures.

Two randomized invariants anchor the subsystem:

* after any sequence of inserts/deletes/updates, the session's patched
  ``ViolationIndex`` equals ``build_violation_index`` from scratch;
* every component-wise measure value equals the whole-database computation
  (naive references built directly on the solvers).
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.constraints.base import ComparisonOp
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.measures import TABLE2_MEASURES, make_measure
from repro.relational import Database, Fact, Schema
from repro.repairs.costs import deletion_costs, subset_cost
from repro.session import MeasurementSession
from repro.solvers.cliques import maximal_sets_avoiding
from repro.solvers.simplex import LpProblem, Sense, solve_lp
from repro.solvers.vertex_cover import minimum_hitting_set
from repro.violations import build_violation_index


def _random_fact(rng: random.Random) -> Fact:
    return Fact("R", (rng.randint(0, 4), rng.choice("xyz"), rng.randint(0, 30)))


def _random_mutation(rng: random.Random, database: Database) -> None:
    choice = rng.random()
    identifiers = database.ids()
    if choice < 0.5 and identifiers:
        attribute = rng.choice(["A", "B", "C"])
        value = rng.randint(0, 6) if rng.random() < 0.7 else rng.choice("xyz")
        database.update(rng.choice(identifiers), attribute, value)
    elif choice < 0.75 or not identifiers:
        database.insert(_random_fact(rng))
    else:
        database.delete(rng.choice(identifiers))


def _constraint_suites():
    binary = [
        FunctionalDependency("R", {"A"}, {"B"}),
        parse_dc("not(t.A > t.C)", "R", name="order"),
        parse_dc("not(t.A = t2.A, t.C > t2.C, t.B != t2.B)", "R", name="mixed"),
    ]
    wide = [
        FunctionalDependency("R", {"A"}, {"B"}),
        DenialConstraint(
            [("x", "R"), ("y", "R"), ("z", "R")],
            [
                Predicate(Term.col("x", "A"), ComparisonOp.EQ, Term.col("y", "A")),
                Predicate(Term.col("y", "A"), ComparisonOp.EQ, Term.col("z", "A")),
                Predicate(Term.col("x", "C"), ComparisonOp.GT, Term.col("y", "C")),
                Predicate(Term.col("y", "C"), ComparisonOp.GT, Term.col("z", "C")),
            ],
            name="wide3",
        ),
    ]
    return {"binary": binary, "wide": wide}


@pytest.fixture
def schema() -> Schema:
    return Schema.from_dict({"R": ["A", "B", "C"]})


class TestIncrementalMaintenance:
    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1, 2])
    def test_random_deltas_match_full_rebuild(self, schema, suite, case, case_rng):
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(25)]
        )
        constraints = _constraint_suites()[suite]
        with MeasurementSession(constraints, database) as session:
            for step in range(120):
                _random_mutation(rng, database)
                if step % rng.choice([1, 2, 3]) == 0:
                    incremental = session.index()
                    full = build_violation_index(constraints, database)
                    assert incremental.mi_sets == full.mi_sets, f"step {step}"
                    assert {
                        (v.fact_ids, v.constraint.name)
                        for v in incremental.per_constraint
                    } == {
                        (v.fact_ids, v.constraint.name)
                        for v in full.per_constraint
                    }, f"step {step}"

    def test_batched_deltas_flush_once(self, schema, case_rng):
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(20)]
        )
        constraints = _constraint_suites()["binary"]
        with MeasurementSession(constraints, database) as session:
            session.index()
            for _ in range(40):
                _random_mutation(rng, database)
            assert session.pending_deltas > 0
            incremental = session.index()
            assert session.pending_deltas == 0
            assert incremental.mi_sets == build_violation_index(
                constraints, database
            ).mi_sets

    def test_session_mutators_and_close(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 5), (1, "y", 5)]
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        session = MeasurementSession(constraints, database)
        assert not session.is_consistent()
        assert session.update(1, "B", "x")
        assert session.is_consistent()
        new_id = session.insert(Fact("R", (1, "z", 0)))
        assert not session.is_consistent()
        assert session.delete(new_id)
        assert session.is_consistent()
        session.close()
        # After close the session no longer tracks the database.
        database.insert(Fact("R", (1, "w", 0)))
        assert session.is_consistent()

    def test_apply_operations_and_measure_batch(self, schema):
        from repro.repairs.operations import DeleteOperation, UpdateOperation

        database = Database.from_rows(
            schema, "R", [(1, "x", 5), (1, "y", 5), (2, "x", 0), (2, "y", 0)]
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        with MeasurementSession(constraints, database) as session:
            values = session.measure_all(
                [make_measure(name) for name in ("I_MI", "I_P", "I_R")]
            )
            assert values == {"I_MI": 2.0, "I_P": 4.0, "I_R": 2.0}
            session.apply([DeleteOperation(0), UpdateOperation(3, "B", "x")])
            assert session.measure(make_measure("I_MI")) == 0.0
            assert session.is_consistent()
            full = build_violation_index(constraints, database)
            assert session.index().mi_sets == full.mi_sets

    def test_refresh_recovers_from_untracked_state(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 5), (1, "y", 5)])
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        session = MeasurementSession(constraints, database)
        session.close()
        database.insert(Fact("R", (2, "x", 0)))
        database.insert(Fact("R", (2, "y", 0)))
        assert len(session.refresh().mi_sets) == 2


def _reference_value(name: str, constraints, database, index) -> float:
    """Whole-database (non-decomposed) reference for each Table 2 measure."""
    if name == "I_d":
        return 0.0 if index.is_consistent() else 1.0
    if name == "I_MI":
        return float(len(index.mi_sets))
    if name == "I_P":
        return float(len(index.problematic))
    if name in ("I_MC", "I'_MC"):
        poisoned = index.self_inconsistent
        usable = [i for i in database.ids() if i not in poisoned]
        groups = [g for g in index.mi_sets if len(g) >= 2]
        count = (
            sum(1 for _ in maximal_sets_avoiding(usable, groups))
            if groups
            else 1
        )
        extra = len(poisoned) if name == "I'_MC" else 0
        return float(count + extra - 1)
    weights = deletion_costs(database, subset_cost)
    if name == "I_R":
        value, _ = minimum_hitting_set(list(index.mi_sets), weights)
        return float(value)
    if name == "I_lin_R":
        if index.is_consistent():
            return 0.0
        involved = sorted(index.problematic)
        position = {i: k for k, i in enumerate(involved)}
        problem = LpProblem(
            num_vars=len(involved),
            objective={position[i]: weights[i] for i in involved},
        )
        for group in index.mi_sets:
            problem.add_row({position[i]: 1.0 for i in group}, Sense.GE, 1.0)
        return float(solve_lp(problem).objective)
    raise KeyError(name)


class TestComponentwiseEqualsWholeDatabase:
    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1])
    def test_all_table2_measures(self, schema, suite, case, case_rng):
        rng = case_rng
        constraints = _constraint_suites()[suite]
        # Redraw (deterministically, from the case's stream) until the
        # sample is inconsistent with a non-trivial component split.
        for _ in range(50):
            database = Database.from_facts(
                schema, [_random_fact(rng) for _ in range(14)]
            )
            index = build_violation_index(constraints, database)
            if not index.is_consistent() and len(index.components()) > 1:
                break
        else:
            pytest.fail("no multi-component inconsistent sample in 50 draws")
        for name in TABLE2_MEASURES:
            componentwise = make_measure(name).value(
                constraints, database, index
            )
            reference = _reference_value(name, constraints, database, index)
            assert componentwise == pytest.approx(reference), name

    def test_consistent_database_is_all_zero(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 5), (2, "y", 6)])
        constraints = _constraint_suites()["binary"]
        index = build_violation_index(constraints, database)
        assert index.components() == []
        for name in TABLE2_MEASURES:
            assert make_measure(name).value(constraints, database, index) == 0.0

    def test_mc_multiplies_over_components(self, schema):
        # Two disjoint FD conflict pairs: |MC| = 2 · 2, I_MC = 3.
        database = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "x", 0), (2, "y", 0)],
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        index = build_violation_index(constraints, database)
        assert len(index.components()) == 2
        assert make_measure("I_MC").value(constraints, database, index) == 3.0
