"""Warm-start snapshots: round-trip bit-identity and fallback semantics.

The anchor invariant is differential, in the style of the sharded
conformance suite: a session restored from a snapshot of state S must be
**bit-identical** — ``index()`` content, ``measure_all`` floats,
``speculate_batch`` scores — to a session built from scratch over S, and a
snapshot that no longer matches the database or constraints must fall back
to the cold build rather than restore anything (never a wrong answer).
"""

from __future__ import annotations

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import TABLE2_MEASURES, make_measure, make_measures
from repro.relational import Database, Fact, Schema
from repro.session import (
    MeasurementSession,
    ShardedMeasurementSession,
    ShardedSessionSnapshot,
    SnapshotError,
    dump_snapshot,
    load_snapshot,
    load_snapshot_bytes,
    make_session,
    save_snapshot,
)
from repro.violations import build_violation_index

from .test_sharding import (
    _random_candidates,
    _random_mutation,
    _random_setup,
)


def _roundtrip(snapshot):
    """Force every snapshot through the versioned byte format."""
    return load_snapshot_bytes(dump_snapshot(snapshot))


def _assert_sessions_identical(restored, control) -> None:
    ri, ci = restored.index(), control.index()
    assert ri.mi_sets == ci.mi_sets
    assert [
        (violation.fact_ids, violation.constraint.name)
        for violation in ri.per_constraint
    ] == [
        (violation.fact_ids, violation.constraint.name)
        for violation in ci.per_constraint
    ]
    assert [c.mi_sets for c in ri.components()] == [
        c.mi_sets for c in ci.components()
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("case", [0, 1, 2])
    def test_flat_round_trip_bit_identical(self, case, case_rng):
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [
                Fact(
                    rng.choice(relations),
                    (rng.randint(0, 4), rng.choice("xyz"), rng.randint(0, 8)),
                )
                for _ in range(20)
            ],
        )
        measures = make_measures(TABLE2_MEASURES)
        with MeasurementSession(constraints, database) as session:
            for _ in range(10):
                _random_mutation(rng, database, relations)
            session.measure_all(measures)
            snap = _roundtrip(session.snapshot())
            # Post-snapshot speculation (apply + rollback) must not leak
            # into the captured state or the restored session.
            candidates = _random_candidates(rng, database, relations, 3)
            session.speculate_batch(candidates, measures)
        with MeasurementSession(
            constraints, database, warm_start=snap
        ) as restored, MeasurementSession(constraints, database) as control:
            assert restored.warm_started
            _assert_sessions_identical(restored, control)
            assert restored.measure_all(measures) == control.measure_all(
                measures
            )
            candidates = _random_candidates(rng, database, relations, 4)
            assert restored.speculate_batch(
                candidates, measures
            ) == control.speculate_batch(candidates, measures)
            # And the maintained state stays in lockstep under new deltas.
            for _ in range(5):
                _random_mutation(rng, database, relations)
                assert restored.measure_all(measures) == control.measure_all(
                    measures
                )
                _assert_sessions_identical(restored, control)

    @pytest.mark.parametrize("case", [0, 1])
    def test_sharded_round_trip_bit_identical(self, case, case_rng):
        rng = case_rng
        schema, constraints = _random_setup(rng)
        relations = schema.relation_names()
        database = Database.from_facts(
            schema,
            [
                Fact(
                    rng.choice(relations),
                    (rng.randint(0, 4), rng.choice("xyz"), rng.randint(0, 8)),
                )
                for _ in range(20)
            ],
        )
        measures = make_measures(TABLE2_MEASURES)
        with ShardedMeasurementSession(constraints, database) as session:
            for _ in range(8):
                _random_mutation(rng, database, relations)
            session.measure_all(measures)
            snap = _roundtrip(session.snapshot())
        with ShardedMeasurementSession(
            constraints, database, warm_start=snap
        ) as restored, MeasurementSession(constraints, database) as control:
            assert restored.warm_started
            _assert_sessions_identical(restored, control)
            assert restored.measure_all(measures) == control.measure_all(
                measures
            )
            candidates = _random_candidates(rng, database, relations, 4)
            assert restored.speculate_batch(
                candidates, measures
            ) == control.speculate_batch(candidates, measures)

    def test_disk_round_trip(self, tmp_path, simple_schema):
        database = Database.from_rows(
            simple_schema, "R", [(1, "x", 5), (1, "y", 5), (2, "x", 1)]
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        path = tmp_path / "state.snap"
        with MeasurementSession(constraints, database) as session:
            session.measure_all(make_measures(("I_MI", "I_R")))
            save_snapshot(session.snapshot(), path)
        with MeasurementSession(
            constraints, database, warm_start=load_snapshot(path)
        ) as restored:
            assert restored.warm_started
            full = build_violation_index(constraints, database)
            assert restored.index().mi_sets == full.mi_sets

    def test_warm_cache_entries_adopted(self, simple_schema):
        database = Database.from_rows(
            simple_schema,
            "R",
            [(1, "x", 5), (1, "y", 5), (2, "x", 1), (2, "z", 1), (7, "q", 0)],
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        with MeasurementSession(constraints, database) as session:
            session.measure_all(make_measures(TABLE2_MEASURES))
            snap = _roundtrip(session.snapshot())
        with MeasurementSession(
            constraints, database, warm_start=snap
        ) as restored:
            # Fresh measure instances — the cross-process case: every live
            # component's value must come from the snapshot, not a solver.
            restored.measure_all(make_measures(TABLE2_MEASURES))
            assert restored.component_cache.misses == 0
            assert restored.component_cache.hits > 0


class TestFallback:
    def _setup(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 5), (1, "y", 5), (2, "x", 1)]
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        return database, constraints

    def test_stale_fingerprint_falls_back(self, simple_schema):
        database, constraints = self._setup(simple_schema)
        with MeasurementSession(constraints, database) as session:
            snap = _roundtrip(session.snapshot())
        database.update(0, "B", "z")  # committed change: snapshot is stale
        with MeasurementSession(
            constraints, database, warm_start=snap
        ) as restored:
            assert not restored.warm_started
            full = build_violation_index(constraints, database)
            assert restored.index().mi_sets == full.mi_sets

    def test_allocator_drift_falls_back(self, simple_schema):
        database, constraints = self._setup(simple_schema)
        with MeasurementSession(constraints, database) as session:
            snap = _roundtrip(session.snapshot())
        # Same facts, different allocator state (delete rewinds the
        # allocator, restore does not advance it back): the snapshot must
        # not restore against a drifted allocator.
        fact = database[0]
        database.delete(0)
        database.restore(0, fact)
        assert database._next_id != snap.fingerprint.next_id
        with MeasurementSession(
            constraints, database, warm_start=snap
        ) as restored:
            assert not restored.warm_started

    def test_changed_constraints_fall_back(self, simple_schema):
        database, constraints = self._setup(simple_schema)
        with MeasurementSession(constraints, database) as session:
            snap = _roundtrip(session.snapshot())
        other = [FunctionalDependency("R", {"A"}, {"C"})]
        with MeasurementSession(other, database, warm_start=snap) as restored:
            assert not restored.warm_started
            full = build_violation_index(other, database)
            assert restored.index().mi_sets == full.mi_sets

    def test_malformed_fields_fall_back_not_crash(self, simple_schema):
        """A snapshot that deserialized but carries bogus fields (bit rot,
        a hand-crafted file) must cold-build, not raise."""
        database, constraints = self._setup(simple_schema)
        with MeasurementSession(constraints, database) as session:
            good = session.snapshot()
        bad_fingerprint = _roundtrip(good)
        bad_fingerprint.fingerprint = frozenset()
        bad_topology = _roundtrip(good)
        bad_topology.topology = {}
        bad_stores = _roundtrip(good)
        bad_stores.stores = [object()]
        for snap in (bad_fingerprint, bad_topology, bad_stores):
            with MeasurementSession(
                constraints, database, warm_start=snap
            ) as restored:
                assert not restored.warm_started
                full = build_violation_index(constraints, database)
                assert restored.index().mi_sets == full.mi_sets
        sharded_bad = ShardedSessionSnapshot(
            version=1,
            fingerprint=frozenset(),
            constraints=(),
            relation_groups=[],
            shards=[],
        )
        with ShardedMeasurementSession(
            constraints, database, warm_start=sharded_bad
        ) as restored:
            assert not restored.warm_started

    def test_version_drift_falls_back(self, simple_schema):
        database, constraints = self._setup(simple_schema)
        with MeasurementSession(constraints, database) as session:
            snap = session.snapshot()
        snap.version = 999
        with MeasurementSession(
            constraints, database, warm_start=snap
        ) as restored:
            assert not restored.warm_started

    def test_foreign_bytes_rejected(self, tmp_path):
        path = tmp_path / "not-a-snapshot"
        path.write_bytes(b"something else entirely")
        with pytest.raises(SnapshotError):
            load_snapshot(path)
        with pytest.raises(SnapshotError):
            load_snapshot_bytes(b"REPRO-SNAPSHOT\ngarbage after the magic")

    def test_hostile_pickle_rejected_not_executed(self, tmp_path):
        """The loader must not be an arbitrary-code-execution vector: a
        pickle smuggling a callable behind the magic header raises
        SnapshotError before anything runs."""
        import pickle

        flag = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (flag.write_text, ("executed",))

        hostile = b"REPRO-SNAPSHOT\n" + pickle.dumps((1, Evil()))
        with pytest.raises(SnapshotError):
            load_snapshot_bytes(hostile)
        assert not flag.exists()

    def test_truncated_file_rejected_at_every_length(
        self, tmp_path, simple_schema
    ):
        """A partially written snapshot file (power loss, full disk) must
        raise SnapshotError — at any truncation point — never restore a
        partial state."""
        database, constraints = self._setup(simple_schema)
        path = tmp_path / "state.snap"
        with MeasurementSession(constraints, database) as session:
            session.measure_all(make_measures(("I_MI", "I_R")))
            save_snapshot(session.snapshot(), path)
        payload = path.read_bytes()
        # Mid-magic, just past the magic, mid-digest, and mid-payload.
        for cut in (4, 15, 30, 60, len(payload) // 2, len(payload) - 1):
            path.write_bytes(payload[:cut])
            with pytest.raises(SnapshotError):
                load_snapshot(path)

    def test_flipped_bytes_past_magic_rejected(self, tmp_path, simple_schema):
        """Bit rot anywhere past the magic header — the digest, the
        version, a pickled cached value — must be a deterministic
        SnapshotError, never a plausibly-restored snapshot carrying a
        silently wrong value."""
        database, constraints = self._setup(simple_schema)
        path = tmp_path / "state.snap"
        with MeasurementSession(constraints, database) as session:
            session.measure_all(make_measures(("I_MI", "I_R")))
            save_snapshot(session.snapshot(), path)
        payload = bytearray(path.read_bytes())
        magic_len = len(b"REPRO-SNAPSHOT\n")
        step = max(1, (len(payload) - magic_len) // 16)
        for position in range(magic_len, len(payload), step):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0x40
            path.write_bytes(bytes(corrupted))
            with pytest.raises(SnapshotError):
                load_snapshot(path)

    def test_mid_write_crash_never_corrupts_the_target(
        self, tmp_path, simple_schema
    ):
        """The crash-mid-write drill at the file level: the target is left
        absent (fresh path) or bit-identical (existing path), and the next
        save goes through; see also tests/session/test_faults.py."""
        from repro.testing import faults
        from repro.testing.faults import FaultInjected

        database, constraints = self._setup(simple_schema)
        path = tmp_path / "state.snap"
        with MeasurementSession(constraints, database) as session:
            snapshot = session.snapshot()
        with faults.inject("snapshot.write"):
            with pytest.raises(FaultInjected):
                save_snapshot(snapshot, path)
        assert not path.exists() and list(tmp_path.iterdir()) == []
        save_snapshot(snapshot, path)
        good = path.read_bytes()
        with faults.inject("snapshot.write"):
            with pytest.raises(FaultInjected):
                save_snapshot(snapshot, path)
        assert path.read_bytes() == good
        with MeasurementSession(
            constraints, database, warm_start=load_snapshot(path)
        ) as restored:
            assert restored.warm_started

    def test_sharded_partition_mismatch_falls_back(self):
        schema = Schema.from_dict(
            {"T0": ["A", "B", "C"], "T1": ["A", "B", "C"]}
        )
        database = Database.from_facts(
            schema,
            [
                Fact("T0", (1, "x", 0)),
                Fact("T0", (1, "y", 0)),
                Fact("T1", (2, "x", 0)),
                Fact("T1", (2, "y", 0)),
            ],
        )
        constraints = [
            FunctionalDependency(relation, {"A"}, {"B"})
            for relation in ("T0", "T1")
        ]
        with ShardedMeasurementSession(constraints, database) as session:
            assert session.relation_groups == [("T0",), ("T1",)]
            snap = _roundtrip(session.snapshot())
        # A coarser (still valid) explicit partition: the per-shard
        # payloads describe the wrong slices, so the restore must reject.
        with ShardedMeasurementSession(
            constraints, database, shards=[("T0", "T1")], warm_start=snap
        ) as restored:
            assert not restored.warm_started
            full = build_violation_index(constraints, database)
            assert restored.index().mi_sets == full.mi_sets

    def test_cross_flavor_snapshots_fall_back(self):
        schema = Schema.from_dict(
            {"T0": ["A", "B", "C"], "T1": ["A", "B", "C"]}
        )
        database = Database.from_facts(
            schema,
            [Fact("T0", (1, "x", 0)), Fact("T0", (1, "y", 0))],
        )
        constraints = [
            FunctionalDependency(relation, {"A"}, {"B"})
            for relation in ("T0", "T1")
        ]
        with MeasurementSession(constraints, database) as flat:
            flat_snap = _roundtrip(flat.snapshot())
        with ShardedMeasurementSession(constraints, database) as sharded:
            sharded_snap = _roundtrip(sharded.snapshot())
        with make_session(
            constraints, database, shards="auto", warm_start=flat_snap
        ) as session:
            assert not session.warm_started
            assert session.measure(make_measure("I_MI")) == 1.0
        with make_session(
            constraints, database, warm_start=sharded_snap
        ) as session:
            assert not session.warm_started
            assert session.measure(make_measure("I_MI")) == 1.0
