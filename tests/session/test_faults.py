"""Graceful-degradation drills: every injected failure lands defined.

The anytime runtime's robustness promises (docstring of
:mod:`repro.testing.faults`) are exercised here point by point: a solver
missing its deadline degrades to TIMEOUT bounds, a crashing backend falls
through to FALLBACK bounds, a snapshot interrupted mid-write never
corrupts the target file, and a shard raising during fan-out rebuilds
cold.  After every drill the session must measure **bit-identical** to a
from-scratch session over the same database — degradation may cost work,
never correctness.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import TABLE2_MEASURES, make_measures
from repro.measures.mc import MaximalConsistentMeasure
from repro.relational import Database, Fact, Schema
from repro.session import (
    MeasurementSession,
    ShardedMeasurementSession,
    load_snapshot,
    make_session,
    save_snapshot,
)
from repro.session.sharding import FAULT_FANOUT
from repro.session.snapshot import FAULT_WRITE
from repro.solvers.anytime import (
    FALLBACK,
    FAULT_BACKEND,
    FAULT_DEADLINE,
    OPTIMAL,
    TIMEOUT,
    status_of,
)
from repro.solvers.cliques import EnumerationBudgetExceeded
from repro.testing import faults
from repro.testing.faults import FaultInjected


def _workload(n: int = 14):
    """Two relations, one path-shaped conflict component each."""
    schema = Schema.from_dict({"R": ["A", "B", "C"], "S": ["A", "B", "C"]})
    database = Database.from_facts(
        schema,
        [
            Fact(relation, (i // 2, i, (i + 1) // 2))
            for relation in ("R", "S")
            for i in range(n)
        ],
    )
    constraints = [
        FunctionalDependency(relation, column, {"B"})
        for relation in ("R", "S")
        for column in ({"A"}, {"C"})
    ]
    return constraints, database


def _fresh_values(constraints, database, measures):
    with MeasurementSession(constraints, database) as fresh:
        return fresh.measure_all(measures)


class TestFaultPlanMechanics:
    def test_targeted_arm_fires_selected_occurrences(self):
        with faults.inject("test.p", after=1, times=2) as plan:
            assert [faults.fires("test.p") for _ in range(5)] == [
                False,
                True,
                True,
                False,
                False,
            ]
            assert plan.fired["test.p"] == 2

    def test_trip_raises_the_armed_error(self):
        with faults.inject("test.p", error=lambda point: KeyError(point)):
            with pytest.raises(KeyError):
                faults.trip("test.p")
            faults.trip("test.p")  # times=1: second occurrence is quiet

    def test_seeded_rates_are_deterministic(self):
        def draw():
            with faults.fault_plan(7, rates={"test.p": 0.5}):
                return [faults.fires("test.p") for _ in range(32)]

        first, second = draw(), draw()
        assert first == second
        assert any(first) and not all(first)

    def test_plans_do_not_nest(self):
        with faults.fault_plan(0):
            with pytest.raises(RuntimeError):
                with faults.fault_plan(1):
                    pass

    def test_disarmed_points_are_quiet(self):
        assert not faults.fires("test.p")
        faults.trip("test.p")


class TestSolverDeadlineDrill:
    def test_forced_deadline_degrades_to_timeout(self):
        constraints, database = _workload()
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            with faults.inject(FAULT_DEADLINE, times=None):
                value = session.measure(mc, budget=60.0)
            assert status_of(value) == TIMEOUT
            after = session.measure(mc)
        assert after == _fresh_values(constraints, database, [mc])[mc.name]
        assert status_of(after) == OPTIMAL

    def test_unbudgeted_calls_ignore_deadline_faults(self):
        # Without a budget scope no chain runs, so the forced expiry has
        # nothing to act on — the exact path stays exact.
        constraints, database = _workload()
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            with faults.inject(FAULT_DEADLINE, times=None):
                value = session.measure(mc)
            assert status_of(value) == OPTIMAL


class TestSolverBackendDrill:
    def test_crashed_backend_falls_through_to_bounds(self):
        constraints, database = _workload()
        measures = make_measures(("I_MC", "I_R"))
        with MeasurementSession(constraints, database) as session:
            with faults.inject(FAULT_BACKEND, times=None):
                values = session.measure_all(measures, budget=60.0)
            for name in ("I_MC", "I_R"):
                assert status_of(values[name]) == FALLBACK
                assert values[name].lower <= values[name].upper
            after = session.measure_all(measures)
        assert after == _fresh_values(constraints, database, measures)


class TestSnapshotWriteDrill:
    def _snapshot(self):
        constraints, database = _workload(6)
        with MeasurementSession(constraints, database) as session:
            session.measure_all(make_measures(("I_MI",)))
            return constraints, database, session.snapshot()

    def test_crash_on_fresh_path_leaves_no_file(self, tmp_path):
        _, _, snapshot = self._snapshot()
        target = tmp_path / "state.snap"
        with faults.inject(FAULT_WRITE):
            with pytest.raises(FaultInjected):
                save_snapshot(snapshot, target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no temp litter either

    def test_crash_preserves_previous_content_bit_identically(self, tmp_path):
        constraints, database, snapshot = self._snapshot()
        target = tmp_path / "state.snap"
        save_snapshot(snapshot, target)
        good_bytes = target.read_bytes()
        with faults.inject(FAULT_WRITE):
            with pytest.raises(FaultInjected):
                save_snapshot(snapshot, target)
        assert target.read_bytes() == good_bytes
        with MeasurementSession(
            constraints, database, warm_start=load_snapshot(target)
        ) as restored:
            assert restored.warm_started

    def test_save_succeeds_after_the_drill(self, tmp_path):
        _, _, snapshot = self._snapshot()
        target = tmp_path / "state.snap"
        with faults.inject(FAULT_WRITE):
            with pytest.raises(FaultInjected):
                save_snapshot(snapshot, target)
        save_snapshot(snapshot, target)
        load_snapshot(target)


class TestShardFanoutDrill:
    def test_degraded_shard_rebuilds_cold(self):
        constraints, database = _workload()
        measures = make_measures(("I_MI", "I_P", "I_R"))
        with ShardedMeasurementSession(constraints, database) as session:
            session.measure_all(measures)
            with faults.inject(FAULT_FANOUT):
                with pytest.raises(FaultInjected):
                    database.insert(Fact("R", (0, 99, 0)))
            # The fact is committed but its shard never saw the event; the
            # next read must rebuild that shard, not serve a stale answer.
            values = session.measure_all(measures)
            assert values == _fresh_values(constraints, database, measures)
            # And the recovered shard keeps tracking subsequent deltas.
            database.insert(Fact("S", (0, 99, 0)))
            assert session.measure_all(measures) == _fresh_values(
                constraints, database, measures
            )

    def test_repeated_fanout_faults_keep_recovering(self):
        constraints, database = _workload(8)
        measures = make_measures(("I_MI", "I_d"))
        with ShardedMeasurementSession(constraints, database) as session:
            with faults.inject(FAULT_FANOUT, times=None):
                for i in range(3):
                    with pytest.raises(FaultInjected):
                        database.insert(Fact("R", (0, 100 + i, 0)))
            assert session.measure_all(measures) == _fresh_values(
                constraints, database, measures
            )


class TestEnumerationLimitExceptionSafety:
    """The unbudgeted ``enumeration_limit`` raise must leave every session
    flavor measuring bit-identically to a fresh session (satellite of the
    anytime work: no half-resolved memo may survive the raise)."""

    def _measures(self):
        return [
            *make_measures(("I_MI", "I_R")),
            MaximalConsistentMeasure(enumeration_limit=3),
        ]

    @pytest.mark.parametrize("shards", [None, "auto"])
    def test_measure_all_raise_is_exception_safe(self, shards):
        constraints, database = _workload()
        exact = make_measures(TABLE2_MEASURES)
        with make_session(constraints, database, shards=shards) as session:
            with pytest.raises(EnumerationBudgetExceeded):
                session.measure_all(self._measures())
            assert session.measure_all(exact) == _fresh_values(
                constraints, database, exact
            )
            # ...and under subsequent deltas, too.
            database.insert(Fact("R", (0, 77, 0)))
            assert session.measure_all(exact) == _fresh_values(
                constraints, database, exact
            )

    @pytest.mark.parametrize("shards", [None, "auto"])
    def test_speculate_batch_raise_is_exception_safe(self, shards):
        constraints, database = _workload()
        exact = make_measures(TABLE2_MEASURES)
        from repro.repairs.operations import DeleteOperation

        identifiers = sorted(
            identifier for identifier, _ in database.items()
        )[:3]
        candidates = [[DeleteOperation(i)] for i in identifiers]
        with make_session(constraints, database, shards=shards) as session:
            with pytest.raises(EnumerationBudgetExceeded):
                session.speculate_batch(candidates, self._measures())
            fresh_scores = None
            with make_session(constraints, database) as fresh:
                fresh_scores = fresh.speculate_batch(candidates, exact)
            assert session.speculate_batch(candidates, exact) == fresh_scores
            assert session.measure_all(exact) == _fresh_values(
                constraints, database, exact
            )


class TestRandomizedDegradationDrill:
    """Seed-driven rates over every point while a session works; after the
    plan deactivates the session must be bit-identical to from-scratch."""

    @pytest.mark.parametrize("shards", [None, "auto"])
    def test_drill_lands_in_defined_state(self, shards, case_rng):
        rng = case_rng
        constraints, database = _workload(10)
        measures = make_measures(("I_MI", "I_MC", "I_R"))
        with make_session(constraints, database, shards=shards) as session:
            with faults.fault_plan(
                rng.randint(0, 2**31),
                rates={
                    FAULT_DEADLINE: 0.4,
                    FAULT_BACKEND: 0.4,
                    FAULT_FANOUT: 0.3,
                },
            ):
                for step in range(12):
                    try:
                        if rng.random() < 0.5:
                            database.insert(
                                Fact(
                                    rng.choice(("R", "S")),
                                    (rng.randint(0, 3), 200 + step, 0),
                                )
                            )
                        else:
                            session.measure_all(measures, budget=60.0)
                    except FaultInjected:
                        pass
            assert session.measure_all(measures) == _fresh_values(
                constraints, database, measures
            )


class TestIngestFlushFault:
    """``ingest.flush`` drills: a tripped drain is a clean refusal.

    The pipeline trips before any pending event applies, so the pending
    buffer, the database and the session must be left bit-identical —
    the producer handles the error and simply retries the drain.
    """

    def test_tripped_drain_leaves_everything_intact_and_retries(self):
        from repro.session.ingest import FAULT_FLUSH

        constraints, database = _workload(8)
        measures = make_measures(("I_MI", "I_d"))
        with MeasurementSession(constraints, database) as session:
            pipe = session.ingest()
            pipe.submit("insert", Fact("R", (0, 99, 0)))
            pipe.submit("update", 0, "B", 99)
            pending_before = pipe.pending
            facts_before = dict(database._facts)
            flushes_before = pipe.counters()["flushes"]
            with faults.inject(FAULT_FLUSH):
                with pytest.raises(FaultInjected):
                    pipe.read(measures, max_staleness_events=0)
            assert pipe.pending == pending_before
            assert dict(database._facts) == facts_before
            assert pipe.counters()["flushes"] == flushes_before
            # The retry drains bit-identically to never having faulted.
            read = pipe.read(measures, max_staleness_events=0)
            assert read.staleness == 0
            assert read.values == _fresh_values(constraints, database, measures)

    def test_seed_driven_flush_faults_with_retry_converge(self, case_rng):
        from repro.session.ingest import FAULT_FLUSH

        constraints, database = _workload(8)
        measures = make_measures(("I_MI", "I_d"))
        with ShardedMeasurementSession(constraints, database) as session:
            pipe = session.ingest()
            with faults.fault_plan(
                case_rng.randrange(2**31), rates={FAULT_FLUSH: 0.4}
            ) as plan:
                for step in range(40):
                    relation = "R" if step % 2 else "S"
                    pipe.submit(
                        "insert", Fact(relation, (step // 3, 200 + step, 0))
                    )
                    if step % 5 == 4:
                        for _ in range(10):  # retry until the drain lands
                            try:
                                pipe.read((), max_staleness_events=2)
                                break
                            except FaultInjected:
                                continue
                while True:
                    try:
                        pipe.flush()
                        break
                    except FaultInjected:
                        continue
            assert pipe.pending == 0
            assert session.measure_all(measures) == _fresh_values(
                constraints, database, measures
            )
