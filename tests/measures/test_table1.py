"""Integration test: every cell of Table 1 on the running example."""

import pytest

from repro.datasets.example1 import (
    TABLE1_EXPECTED,
    TABLE1_UPDATE_ATTRIBUTES,
    airport_constraints,
    clean_database,
    noisy_database_d1,
    noisy_database_d2,
)
from repro.measures import make_measure
from repro.measures.minimal_repair import MinimumUpdateRepairMeasure
from repro.violations import build_violation_index


@pytest.fixture(scope="module")
def example():
    constraints = airport_constraints()
    databases = {"D1": noisy_database_d1(), "D2": noisy_database_d2()}
    indexes = {
        name: build_violation_index(constraints, db)
        for name, db in databases.items()
    }
    return constraints, databases, indexes


@pytest.mark.parametrize(
    "measure_name,db_name",
    sorted((m, d) for (m, d) in TABLE1_EXPECTED if m != "I_R_upd"),
)
def test_table1_cell(example, measure_name, db_name):
    constraints, databases, indexes = example
    measure = make_measure(measure_name)
    value = measure.value(constraints, databases[db_name], indexes[db_name])
    assert value == pytest.approx(TABLE1_EXPECTED[(measure_name, db_name)])


@pytest.mark.parametrize("db_name", ["D1", "D2"])
def test_table1_update_repair(example, db_name):
    constraints, databases, _ = example
    measure = MinimumUpdateRepairMeasure(
        updatable_attributes=TABLE1_UPDATE_ATTRIBUTES
    )
    value = measure.value(constraints, databases[db_name])
    assert value == pytest.approx(TABLE1_EXPECTED[("I_R_upd", db_name)])


def test_clean_database_all_zero(example):
    constraints, _, _ = example
    d0 = clean_database()
    for name in ("I_d", "I_MI", "I_P", "I_MC", "I'_MC", "I_R", "I_lin_R"):
        assert make_measure(name).value(constraints, d0) == 0.0


def test_table1_mi_sets_match_example4(example):
    constraints, databases, indexes = example
    # D1: all six pairs of {f2..f5} plus {f1, f5}  (ids 1..4 and {0, 4}).
    d1_sets = {tuple(sorted(s)) for s in indexes["D1"].mi_sets}
    expected_d1 = {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (0, 4)}
    assert d1_sets == expected_d1
    # D2 (Table 1): {f2,f3},{f2,f4},{f2,f5},{f3,f4},{f4,f5}.
    d2_sets = {tuple(sorted(s)) for s in indexes["D2"].mi_sets}
    expected_d2 = {(1, 2), (1, 3), (1, 4), (2, 3), (3, 4)}
    assert d2_sets == expected_d2


def test_example9_lp_assignment(example):
    """Example 9: assigning 0.5 everywhere is optimal for D1."""
    constraints, databases, indexes = example
    from repro.measures import LinearRelaxationMeasure

    measure = LinearRelaxationMeasure()
    x = measure.assignment(constraints, databases["D1"], indexes["D1"])
    assert sum(x.values()) == pytest.approx(2.5)
    # Every MI pair is covered fractionally.
    for group in indexes["D1"].mi_sets:
        assert sum(x[i] for i in group) >= 1 - 1e-9
