"""Integration: soft repairs against the incremental-cleaning scenario.

The soft semantics models the HoloClean setting (§6.2.2: "HoloClean uses
soft constraints; hence, it does not necessarily eliminate all violations"):
rules that are expensive to enforce relative to their weight stay violated.
"""

import pytest

from repro.datasets import generate_sample
from repro.noise import CONoise
from repro.repairs import minimum_subset_repair
from repro.repairs.soft import HARD, minimum_soft_repair


@pytest.fixture(scope="module")
def noisy_hospital():
    db, constraints = generate_sample("Hospital", 100, seed=80)
    CONoise(constraints, seed=81).run(db, 10)
    return db, constraints


class TestSoftVsHard:
    def test_soft_never_exceeds_hard(self, noisy_hospital):
        db, constraints = noisy_hospital
        hard_cost = minimum_subset_repair(constraints, db).cost
        weights = [2.0] * len(constraints)
        soft = minimum_soft_repair(constraints, weights, db)
        assert soft.cost <= hard_cost + 1e-9

    def test_all_hard_weights_equal_ir(self, noisy_hospital):
        db, constraints = noisy_hospital
        hard_cost = minimum_subset_repair(constraints, db).cost
        soft = minimum_soft_repair(constraints, [HARD] * len(constraints), db)
        assert soft.cost == pytest.approx(hard_cost)
        assert soft.given_up == []

    def test_zero_weights_give_up_everything_violated(self, noisy_hospital):
        db, constraints = noisy_hospital
        soft = minimum_soft_repair(constraints, [0.0] * len(constraints), db)
        assert soft.cost == pytest.approx(0.0)
        assert soft.deleted_ids == set()

    def test_soft_cost_monotone_in_weights(self, noisy_hospital):
        db, constraints = noisy_hospital
        cheap = minimum_soft_repair(constraints, [0.5] * len(constraints), db)
        pricey = minimum_soft_repair(constraints, [3.0] * len(constraints), db)
        assert cheap.cost <= pricey.cost + 1e-9
