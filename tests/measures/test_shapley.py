"""Tests for Shapley values of inconsistency."""

import random

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import (
    EXACT_SHAPLEY_MAX_FACTS,
    make_measure,
    rank_facts_by_blame,
    shapley_values_exact,
    shapley_values_mi,
    shapley_values_sampled,
)
from repro.relational import Database, Schema
from repro.violations import build_violation_index


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


@pytest.fixture
def fd():
    return FunctionalDependency("R", {"A"}, {"B"})


class TestExact:
    def test_efficiency_axiom(self, schema, fd):
        # Shapley values sum to I(Σ, D).
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (2, "z")])
        for name in ("I_MI", "I_R", "I_lin_R"):
            measure = make_measure(name)
            values = shapley_values_exact(measure, [fd], db)
            assert sum(values.values()) == pytest.approx(
                measure.value([fd], db)
            ), name

    def test_symmetry_axiom(self, schema, fd):
        # The two facts of one conflict are interchangeable.
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        values = shapley_values_exact(make_measure("I_MI"), [fd], db)
        assert values[0] == pytest.approx(values[1])

    def test_null_player_axiom(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (9, "q")])
        values = shapley_values_exact(make_measure("I_MI"), [fd], db)
        assert values[2] == pytest.approx(0.0)

    def test_star_blames_the_hub(self, schema, fd):
        # One fact conflicting with three others carries the most blame.
        db = Database.from_rows(
            schema, "R", [(1, "hub"), (1, "a"), (1, "a"), (1, "a")]
        )
        values = shapley_values_exact(make_measure("I_R"), [fd], db)
        assert values[0] == max(values.values())

    def test_size_guard(self, schema, fd):
        db = Database.from_rows(schema, "R", [(i, "x") for i in range(15)])
        with pytest.raises(ValueError, match="limited"):
            shapley_values_exact(make_measure("I_MI"), [fd], db, max_facts=12)


class TestClosedForm:
    def test_matches_exact_for_imi(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (1, "z"), (2, "p"), (2, "q")]
        )
        closed = shapley_values_mi([fd], db)
        exact = shapley_values_exact(make_measure("I_MI"), [fd], db)
        for identifier in db.ids():
            assert closed[identifier] == pytest.approx(exact[identifier])

    def test_share_per_mi_set(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        closed = shapley_values_mi([fd], db)
        assert closed == {0: 0.5, 1: 0.5}

    def test_accepts_prebuilt_index(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (2, "p"), (2, "q")]
        )
        index = build_violation_index([fd], db)
        assert shapley_values_mi([fd], db, index=index) == shapley_values_mi(
            [fd], db
        )


class TestSampled:
    def test_unbiased_on_small_instance(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (1, "z")])
        measure = make_measure("I_MI")
        sampled = shapley_values_sampled(measure, [fd], db, samples=400, seed=1)
        exact = shapley_values_exact(measure, [fd], db)
        for identifier in db.ids():
            assert sampled[identifier] == pytest.approx(
                exact[identifier], abs=0.15
            )

    def test_efficiency_holds_exactly_per_sample(self, schema, fd):
        # Permutation sampling telescopes: the sum is exactly I(D).
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (2, "z")])
        measure = make_measure("I_MI")
        sampled = shapley_values_sampled(measure, [fd], db, samples=5, seed=2)
        assert sum(sampled.values()) == pytest.approx(measure.value([fd], db))

    @pytest.mark.parametrize("name", ["I_MI", "I_P", "I_R", "I_lin_R"])
    def test_speculative_streams_match_subset_rebuilds(self, schema, fd, name):
        # The session-backed sampler must be bit-identical to the naive
        # subset-materialize-and-rebuild estimator on the same permutations.
        db = Database.from_rows(
            schema,
            "R",
            [(1, "x"), (1, "y"), (1, "z"), (2, "p"), (2, "q"), (3, "k")],
        )
        measure = make_measure(name)
        seed, samples = 11, 12
        sampled = shapley_values_sampled(
            measure, [fd], db, samples=samples, seed=seed
        )
        rng = random.Random(seed)
        ids = db.ids()
        reference = {identifier: 0.0 for identifier in ids}
        for _ in range(samples):
            order = list(ids)
            rng.shuffle(order)
            previous, prefix = 0.0, set()
            for identifier in order:
                prefix.add(identifier)
                current = measure.value([fd], db.subset(prefix))
                reference[identifier] += current - previous
                previous = current
        reference = {i: total / samples for i, total in reference.items()}
        assert sampled == reference


class TestRanking:
    def test_rank_uses_closed_form_for_imi(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "hub"), (1, "a"), (1, "a"), (9, "clean")]
        )
        ranked = rank_facts_by_blame(make_measure("I_MI"), [fd], db)
        assert ranked[0][0] == 0  # the hub
        assert ranked[-1][1] == 0.0  # the clean fact

    def test_rank_with_repair_measure(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        ranked = rank_facts_by_blame(make_measure("I_R"), [fd], db)
        assert len(ranked) == 2
        assert ranked[0][1] == pytest.approx(0.5)

    def test_guard_matches_exact_enumerator(self, schema, fd):
        # 11 facts: above the old dispatch threshold (10), within the exact
        # enumerator's limit — the dispatcher must route to exact, not
        # sampling, and the enumerator must accept it.
        rows = [(1, "x"), (1, "y")] + [(k, "c") for k in range(2, 11)]
        db = Database.from_rows(schema, "R", rows)
        assert len(db) == 11 <= EXACT_SHAPLEY_MAX_FACTS
        measure = make_measure("I_P")
        ranked = dict(rank_facts_by_blame(measure, [fd], db))
        exact = shapley_values_exact(measure, [fd], db)
        for identifier in db.ids():
            assert ranked[identifier] == pytest.approx(exact[identifier])
