"""Unit tests for the measure registry."""

import pytest

from repro.measures import (
    FIGURE_MEASURES,
    TABLE2_MEASURES,
    available_measures,
    make_measure,
    make_measures,
)


def test_all_names_construct():
    for name in available_measures():
        measure = make_measure(name)
        assert measure.name == name


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown measure"):
        make_measure("I_nope")


def test_make_measures_batch():
    measures = make_measures(["I_d", "I_MI"])
    assert [m.name for m in measures] == ["I_d", "I_MI"]


def test_figure_measures_subset_of_registry():
    assert set(FIGURE_MEASURES) <= set(available_measures())


def test_table2_measures_subset_of_registry():
    assert set(TABLE2_MEASURES) <= set(available_measures())


def test_top_level_measure_helper():
    from repro import Database, Schema, measure, parse_fd

    schema = Schema.from_dict({"R": ["City", "Country"]})
    db = Database.from_rows(schema, "R", [("Paris", "FR"), ("Paris", "DE")])
    assert measure("I_MI", [parse_fd("R: City -> Country")], db) == 1.0
