"""Cross-measure relationships the paper states or implies.

* ``I_d ≤ I_MI`` pointwise (any violation makes both positive; I_MI counts);
* ``I_R ≤ I_P`` for anti-monotonic constraints (deleting all problematic
  facts is a repair);
* ``I_MI ≥ I_P / width`` (each MI set covers at most *width* facts);
* ``I_R ≤ I_MI`` (hitting each MI set with one fact suffices);
* ``I_lin_R ≥ I_MI / (width choose 2)``-style bounds are not asserted —
  only the sound ones above are.
"""

import pytest

from repro.datasets import generate_sample
from repro.measures import make_measure
from repro.noise import CONoise, RNoise
from repro.violations import build_violation_index


def make_cases():
    cases = []
    for dataset, seed in (("Hospital", 1), ("Airport", 2), ("Tax", 3), ("Stock", 4)):
        db, constraints = generate_sample(dataset, 90, seed=seed)
        CONoise(constraints, seed=seed).run(db, 6)
        cases.append((dataset + "+CONoise", constraints, db))
        db2, constraints2 = generate_sample(dataset, 90, seed=seed + 10)
        RNoise(constraints2, alpha=0.1, seed=seed).run(db2)
        cases.append((dataset + "+RNoise", constraints2, db2))
    return cases


CASES = make_cases()


@pytest.mark.parametrize("label,constraints,db", CASES, ids=[c[0] for c in CASES])
def test_measure_inequalities(label, constraints, db):
    index = build_violation_index(constraints, db)
    drastic = make_measure("I_d").value(constraints, db, index)
    mi = make_measure("I_MI").value(constraints, db, index)
    problematic = make_measure("I_P").value(constraints, db, index)
    exact = make_measure("I_R").value(constraints, db, index)
    lin = make_measure("I_lin_R").value(constraints, db, index)
    width = max(index.max_width, 1)

    assert drastic <= mi
    assert exact <= problematic + 1e-9
    assert exact <= mi + 1e-9
    assert mi >= problematic / width - 1e-9
    assert lin <= exact + 1e-9
    assert exact <= width * lin + 1e-9
    # Problematic facts bound the database size.
    assert problematic <= len(db)
