"""Measure invariance under logical equivalence of constraints (Section 3).

The second standard requirement on inconsistency measures:
``I(Σ, D) = I(Σ', D)`` whenever ``Σ ≡ Σ'``.  We check it on several
syntactically different but equivalent constraint sets.
"""

import pytest

from repro.constraints import FunctionalDependency, fd_sets_equivalent, parse_dc
from repro.measures import make_measure
from repro.relational import Database, Schema

MEASURES = ("I_d", "I_MI", "I_P", "I_MC", "I_R", "I_lin_R")


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B", "C"]})


@pytest.fixture
def noisy_db(schema):
    return Database.from_rows(
        schema,
        "R",
        [(1, "x", 0), (1, "y", 0), (1, "y", 1), (2, "z", 0), (2, "z", 5)],
    )


class TestFdEquivalence:
    def test_composite_vs_decomposed_rhs(self, noisy_db):
        composite = [FunctionalDependency("R", {"A"}, {"B", "C"})]
        decomposed = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"A"}, {"C"}),
        ]
        assert fd_sets_equivalent(composite, decomposed)
        for name in MEASURES:
            measure = make_measure(name)
            assert measure.value(composite, noisy_db) == pytest.approx(
                measure.value(decomposed, noisy_db)
            ), name

    def test_redundant_fd_added(self, noisy_db):
        base = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
        ]
        with_redundant = base + [FunctionalDependency("R", {"A"}, {"C"})]
        assert fd_sets_equivalent(base, with_redundant)
        for name in MEASURES:
            measure = make_measure(name)
            assert measure.value(base, noisy_db) == pytest.approx(
                measure.value(with_redundant, noisy_db)
            ), name

    def test_trivial_fd_added(self, noisy_db):
        base = [FunctionalDependency("R", {"A"}, {"B"})]
        with_trivial = base + [FunctionalDependency("R", {"A", "B"}, {"B"})]
        for name in MEASURES:
            measure = make_measure(name)
            assert measure.value(base, noisy_db) == pytest.approx(
                measure.value(with_trivial, noisy_db)
            ), name


class TestDcEquivalence:
    def test_duplicate_dc_ignored(self, noisy_db):
        dc = parse_dc("not(t.A = t'.A, t.B != t'.B)", "R")
        dc_again = parse_dc("not(t.A = t'.A, t.B != t'.B)", "R")
        for name in MEASURES:
            measure = make_measure(name)
            assert measure.value([dc], noisy_db) == pytest.approx(
                measure.value([dc, dc_again], noisy_db)
            ), name

    def test_fd_vs_dc_formulation(self, noisy_db):
        fd = [FunctionalDependency("R", {"A"}, {"B"})]
        dc = [parse_dc("not(t.A = t'.A, t.B != t'.B)", "R")]
        for name in MEASURES:
            measure = make_measure(name)
            assert measure.value(fd, noisy_db) == pytest.approx(
                measure.value(dc, noisy_db)
            ), name
