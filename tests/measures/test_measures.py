"""Unit tests for the individual inconsistency measures."""

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.measures import (
    DrasticMeasure,
    LinearRelaxationMeasure,
    MaximalConsistentMeasure,
    MaximalConsistentPrimeMeasure,
    MinimalInconsistentMeasure,
    MinimumRepairMeasure,
    ProblematicFactsMeasure,
    normalize_series,
)
from repro.relational import Database, Schema
from repro.violations import build_violation_index


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


@pytest.fixture
def fd():
    return FunctionalDependency("R", {"A"}, {"B"})


def db_of(schema, rows):
    return Database.from_rows(schema, "R", rows)


class TestDrastic:
    def test_zero_on_consistent(self, schema, fd):
        assert DrasticMeasure().value([fd], db_of(schema, [(1, "x")])) == 0.0

    def test_one_on_inconsistent(self, schema, fd):
        assert (
            DrasticMeasure().value([fd], db_of(schema, [(1, "x"), (1, "y")])) == 1.0
        )

    def test_uses_precomputed_index(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y")])
        index = build_violation_index([fd], db)
        assert DrasticMeasure().value([fd], db, index) == 1.0


class TestMiAndProblematic:
    def test_counts_pairs(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (1, "z")])
        assert MinimalInconsistentMeasure().value([fd], db) == 3.0
        assert ProblematicFactsMeasure().value([fd], db) == 3.0

    def test_disjoint_groups(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (2, "a"), (2, "b")])
        assert MinimalInconsistentMeasure().value([fd], db) == 2.0
        assert ProblematicFactsMeasure().value([fd], db) == 4.0

    def test_problematic_ignores_clean_facts(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (9, "q")])
        assert ProblematicFactsMeasure().value([fd], db) == 2.0


class TestMaximalConsistent:
    def test_consistent_is_zero(self, schema, fd):
        assert MaximalConsistentMeasure().value([fd], db_of(schema, [(1, "x")])) == 0.0

    def test_one_conflict_two_mcs(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y")])
        assert MaximalConsistentMeasure().value([fd], db) == 1.0

    def test_self_inconsistent_excluded(self, schema):
        dc = parse_dc("not(t.A > 5)", "R")
        db = db_of(schema, [(10, "x"), (1, "y")])
        # MCS family = {{f1}} -> I_MC = 0; I'_MC = 0 + 1 self-inconsistency.
        assert MaximalConsistentMeasure().value([dc], db) == 0.0
        assert MaximalConsistentPrimeMeasure().value([dc], db) == 1.0

    def test_prime_equals_plain_for_fds(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (2, "z")])
        plain = MaximalConsistentMeasure().value([fd], db)
        prime = MaximalConsistentPrimeMeasure().value([fd], db)
        assert plain == prime

    def test_hypergraph_conflicts(self):
        from repro.properties.counterexamples import at_most_k_dc

        schema = Schema.from_dict({"R": ["Id"]})
        db = Database.from_rows(schema, "R", [(1,), (2,), (3,)])
        dc = at_most_k_dc(2)
        # MCS = all 2-subsets: 3 of them.
        assert MaximalConsistentMeasure().value([dc], db) == 2.0

    def test_enumeration_budget(self, schema, fd):
        rows = [(g, f"v{i}") for g in range(4) for i in range(4)]
        db = db_of(schema, rows)
        measure = MaximalConsistentMeasure(enumeration_limit=3)
        from repro.solvers.cliques import EnumerationBudgetExceeded

        with pytest.raises(EnumerationBudgetExceeded):
            measure.value([fd], db)


class TestRepairMeasures:
    def test_ir_equals_min_vertex_cover(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (1, "z")])
        assert MinimumRepairMeasure().value([fd], db) == 2.0

    def test_lin_r_lower_bound(self, schema, fd):
        db = db_of(schema, [(1, "x"), (1, "y"), (1, "z")])
        lin = LinearRelaxationMeasure().value([fd], db)
        exact = MinimumRepairMeasure().value([fd], db)
        assert lin == pytest.approx(1.5)
        assert lin <= exact

    def test_repair_aware_flags(self):
        assert MinimumRepairMeasure().repair_aware
        assert LinearRelaxationMeasure().repair_aware
        assert not DrasticMeasure().repair_aware


class TestNormalize:
    def test_scales_to_unit(self):
        assert normalize_series([0, 2, 4]) == [0.0, 0.5, 1.0]

    def test_all_zero(self):
        assert normalize_series([0, 0]) == [0.0, 0.0]

    def test_empty(self):
        assert normalize_series([]) == []
