"""ComponentValueCache bounding: LRU eviction, live pinning, warm entries.

Regression suite for the wholesale-clear bug: crossing *max_entries*
mid-sweep used to drop every hot entry (and the identity-keyed measure
instances with them), so the very next measurement point re-solved every
live component.  Eviction is now LRU and never touches an entry whose
content key is pinned by a live topology.
"""

from __future__ import annotations

from repro.constraints import FunctionalDependency
from repro.measures import make_measures
from repro.measures.base import (
    ComponentValueCache,
    ComponentwiseMeasure,
    warm_cache_token,
)
from repro.relational import Database, Fact, Schema
from repro.session import MeasurementSession


class _CountingMeasure(ComponentwiseMeasure):
    name = "I_count"

    def __init__(self) -> None:
        self.calls = 0

    def component_value(self, constraints, database, component) -> float:
        self.calls += 1
        return 1.0


def _probe(cache: ComponentValueCache, measure, key) -> float:
    return cache.component_value(measure, [], None, None, key=key)


class TestLruEviction:
    def test_bound_evicts_stalest_first(self):
        cache = ComponentValueCache(max_entries=8)
        measure = _CountingMeasure()
        for k in range(8):
            _probe(cache, measure, ("key", k))
        # Refresh key 0: it becomes the youngest entry.
        _probe(cache, measure, ("key", 0))
        assert cache.hits == 1
        # Crossing the bound evicts from the stale end (keys 1, 2, ...),
        # not wholesale.
        _probe(cache, measure, ("key", 8))
        assert len(cache) <= 8
        assert cache.evictions > 0
        hits = cache.hits
        _probe(cache, measure, ("key", 0))  # survived (recently used)
        assert cache.hits == hits + 1
        misses = cache.misses
        _probe(cache, measure, ("key", 1))  # evicted (stalest)
        assert cache.misses == misses + 1

    def test_pinned_entries_survive_eviction(self):
        cache = ComponentValueCache(max_entries=8)
        live = {("live", k) for k in range(4)}
        cache.add_pin_source(lambda: live)
        measure = _CountingMeasure()
        for k in range(4):
            _probe(cache, measure, ("live", k))
        for k in range(20):
            _probe(cache, measure, ("dead", k))
        hits = cache.hits
        for k in range(4):
            _probe(cache, measure, ("live", k))
        assert cache.hits == hits + 4, "a live component's entry was evicted"

    def test_all_pinned_cache_may_exceed_bound(self):
        cache = ComponentValueCache(max_entries=4)
        live = {("live", k) for k in range(6)}
        cache.add_pin_source(lambda: live)
        measure = _CountingMeasure()
        for k in range(6):
            _probe(cache, measure, ("live", k))
        assert len(cache) == 6  # correctness over memory

    def test_sweep_crossing_the_bound_keeps_its_hit_rate(self):
        """The end-to-end regression: a session sweep over more components
        than *max_entries* allows must keep serving live components from
        cache — wholesale clearing made every point past the bound re-solve
        everything."""
        schema = Schema.from_dict({"R": ["A", "B", "C"]})
        facts = [
            Fact("R", (k, source, 0))
            for k in range(24)
            for source in ("x", "y")
        ]
        database = Database.from_facts(schema, facts)
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        measures = make_measures(("I_MI", "I_P", "I_R", "I_lin_R"))
        with MeasurementSession(constraints, database) as session:
            session.component_cache.max_entries = 16
            components = len(session.index().components())
            assert components > 16  # the sweep genuinely crosses the bound
            session.measure_all(measures)
            # Re-measuring an unchanged state must be all hits: every live
            # component stayed cached even though the bound was crossed.
            session.component_cache.misses = 0
            session.measure_all(measures)
            assert session.component_cache.misses == 0

    def test_session_close_unpins(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        database = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        session = MeasurementSession(constraints, database)
        cache = session.component_cache
        assert cache._pin_sources
        session.close()
        assert not cache._pin_sources


class TestWarmTokens:
    def test_plain_config_measures_have_tokens(self):
        for measure in make_measures(("I_MI", "I_P", "I_MC", "I_R", "I_lin_R")):
            token = warm_cache_token(measure)
            assert token is not None
            assert token == warm_cache_token(type(measure)())

    def test_divergent_config_divides_tokens(self):
        from repro.measures.mc import MaximalConsistentMeasure

        assert warm_cache_token(
            MaximalConsistentMeasure(enumeration_limit=10)
        ) != warm_cache_token(MaximalConsistentMeasure(enumeration_limit=20))

    def test_opaque_config_gets_no_token(self):
        from repro.measures.minimal_repair import MinimumRepairMeasure

        measure = MinimumRepairMeasure(cost_function=lambda db, i: 1.0)
        assert warm_cache_token(measure) is None

    def test_nested_opaque_config_gets_no_token(self):
        """A container attribute hiding mutable/opaque data must disqualify
        the measure: the token has to be hashable and picklable."""
        measure = _CountingMeasure()
        measure.weights = (1, [2, 3])
        assert warm_cache_token(measure) is None
        measure.weights = (1, (2, frozenset({3})))
        assert warm_cache_token(measure) is not None

    def test_malformed_warm_entries_are_dropped_not_raised(self):
        cache = ComponentValueCache()
        cache.absorb_warm([((1, [2]), ("key", 1), 7.0)])  # unhashable token
        assert not cache._warm

    def test_absorbed_entries_count_as_hits(self):
        cache = ComponentValueCache()
        donor = _CountingMeasure()
        cache.absorb_warm([(warm_cache_token(donor), ("key", 1), 7.0)])
        adopter = _CountingMeasure()
        assert _probe(cache, adopter, ("key", 1)) == 7.0
        assert cache.hits == 1 and cache.misses == 0
        assert adopter.calls == 0
