"""Shared fixtures: small schemas, databases and constraint sets."""

from __future__ import annotations

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.datasets.example1 import (
    airport_constraints,
    clean_database,
    noisy_database_d1,
    noisy_database_d2,
)
from repro.relational import Database, Schema


@pytest.fixture
def simple_schema() -> Schema:
    return Schema.from_dict({"R": ["A", "B", "C"]})


@pytest.fixture
def simple_db(simple_schema) -> Database:
    return Database.from_rows(
        simple_schema,
        "R",
        [(1, "x", 10), (1, "y", 20), (2, "x", 30), (3, "z", 10)],
    )


@pytest.fixture
def fd_a_b() -> FunctionalDependency:
    return FunctionalDependency("R", {"A"}, {"B"})


@pytest.fixture
def airport_example():
    """(constraints, D0, D1, D2) of the running example."""
    return (
        airport_constraints(),
        clean_database(),
        noisy_database_d1(),
        noisy_database_d2(),
    )


@pytest.fixture
def order_dc():
    """A single-tuple order DC over R(A, B, C): ¬(A > B)."""
    return parse_dc("not(t.A > t.B)", "R")
