"""Shared fixtures: small schemas, databases, constraints — and seeds.

Randomized suites draw their entropy from one session-scoped
``--repro-seed`` option: every test case derives its own seed from the
session seed and its node id, so a whole run is reproduced by a single
number, yet no two cases (or parametrizations) share a stream.  On
failure the seeds are echoed in the report, so a red randomized run is
one ``--repro-seed N`` away from a local repro.

Every test also runs under a wall-clock ceiling (``REPRO_TEST_TIMEOUT``
seconds, default 300): a hung solver fails one test with a timeout instead
of wedging the whole run.  When ``pytest-timeout`` is installed (the CI
configuration, see the ``timeout`` extra in setup.py) its ceiling is armed;
otherwise a SIGALRM-based fallback covers the main thread on platforms
that have it.
"""

from __future__ import annotations

import os
import random
import signal
import zlib

import pytest

#: Per-test wall-clock ceiling in seconds (0 disables it).
_TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "300"))

from repro.constraints import FunctionalDependency, parse_dc
from repro.datasets.example1 import (
    airport_constraints,
    clean_database,
    noisy_database_d1,
    noisy_database_d2,
)
from repro.relational import Database, Schema

#: Default session seed — fixed so plain ``pytest`` runs are stable; CI or
#: soak runs vary it via ``--repro-seed`` / ``REPRO_SEED``.
_DEFAULT_SEED = 0


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repro-seed",
        action="store",
        type=int,
        default=None,
        help=(
            "session seed for the randomized suites; per-case seeds derive "
            "from it and the test node id (default: REPRO_SEED env var or "
            f"{_DEFAULT_SEED})"
        ),
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long randomized/e2e suites (CI's fast lane runs -m 'not slow')",
    )
    seed = config.getoption("--repro-seed")
    if seed is None:
        seed = int(os.environ.get("REPRO_SEED", _DEFAULT_SEED))
    config._repro_session_seed = seed
    if config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout installed: arm its per-test ceiling unless the
        # invocation already chose one (--timeout wins over the default).
        if _TEST_TIMEOUT and not getattr(config.option, "timeout", None):
            config.option.timeout = _TEST_TIMEOUT
    else:
        # Register the marker pytest-timeout would own, so per-test
        # overrides stay valid (and honored by the fallback below).
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock ceiling "
            "(SIGALRM fallback when pytest-timeout is not installed)",
        )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM per-test ceiling when pytest-timeout is not installed.

    Main-thread only (SIGALRM's scope) and unix-only — exactly the hang
    class the anytime-solver suites can produce.  ``timeout(0)`` markers
    opt a test out; integer alarms round the ceiling up to a whole second.
    """
    if item.config.pluginmanager.hasplugin("timeout") or not hasattr(
        signal, "SIGALRM"
    ):
        return (yield)
    marker = item.get_closest_marker("timeout")
    ceiling = marker.args[0] if marker and marker.args else _TEST_TIMEOUT
    if not ceiling:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {ceiling}s per-test wall-clock ceiling "
            "(REPRO_TEST_TIMEOUT overrides it)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(max(1, int(ceiling)))
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def derive_case_seed(session_seed: int, node_id: str) -> int:
    """The per-case seed: stable hash of the session seed and node id."""
    return zlib.crc32(f"{session_seed}:{node_id}".encode("utf-8"))


@pytest.fixture(scope="session")
def repro_session_seed(request) -> int:
    """The session-scoped ``--repro-seed`` value."""
    return request.config._repro_session_seed


@pytest.fixture
def case_seed(request, repro_session_seed) -> int:
    """This test case's derived seed (echoed on failure)."""
    seed = derive_case_seed(repro_session_seed, request.node.nodeid)
    request.node._repro_seeds = (repro_session_seed, seed)
    return seed


@pytest.fixture
def case_rng(case_seed) -> random.Random:
    """A ``random.Random`` seeded with this case's derived seed."""
    return random.Random(case_seed)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    seeds = getattr(item, "_repro_seeds", None)
    if seeds is not None and report.when == "call" and report.failed:
        session_seed, seed = seeds
        report.sections.append(
            (
                "repro seed",
                f"randomized case seed {seed}; reproduce this run with "
                f"--repro-seed {session_seed}",
            )
        )
    return report


@pytest.fixture
def simple_schema() -> Schema:
    return Schema.from_dict({"R": ["A", "B", "C"]})


@pytest.fixture
def simple_db(simple_schema) -> Database:
    return Database.from_rows(
        simple_schema,
        "R",
        [(1, "x", 10), (1, "y", 20), (2, "x", 30), (3, "z", 10)],
    )


@pytest.fixture
def fd_a_b() -> FunctionalDependency:
    return FunctionalDependency("R", {"A"}, {"B"})


@pytest.fixture
def airport_example():
    """(constraints, D0, D1, D2) of the running example."""
    return (
        airport_constraints(),
        clean_database(),
        noisy_database_d1(),
        noisy_database_d2(),
    )


@pytest.fixture
def order_dc():
    """A single-tuple order DC over R(A, B, C): ¬(A > B)."""
    return parse_dc("not(t.A > t.B)", "R")
