"""Unit tests for maximal clique / independent-set enumeration."""

import itertools
import random

import networkx as nx
import pytest

from repro.solvers.cliques import (
    EnumerationBudgetExceeded,
    count_maximal_independent_sets,
    maximal_cliques,
    maximal_independent_sets,
    maximal_sets_avoiding,
)


class TestMaximalCliques:
    def test_empty_graph_single_empty_clique(self):
        result = list(maximal_cliques([], {}))
        assert result == [frozenset()]

    def test_triangle(self):
        adjacency = {"a": {"b", "c"}, "b": {"a", "c"}, "c": {"a", "b"}}
        result = list(maximal_cliques(list("abc"), adjacency))
        assert result == [frozenset("abc")]

    def test_path(self):
        adjacency = {"a": {"b"}, "b": {"a", "c"}, "c": {"b"}}
        result = {frozenset(c) for c in maximal_cliques(list("abc"), adjacency)}
        assert result == {frozenset("ab"), frozenset("bc")}


class TestIndependentSets:
    def test_no_edges_one_mis(self):
        assert count_maximal_independent_sets(list("abc"), []) == 1

    def test_path_graph(self):
        # a-b-c: MIS = {a,c}, {b}
        assert count_maximal_independent_sets(list("abc"), [("a", "b"), ("b", "c")]) == 2

    def test_cycle5(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")]
        assert count_maximal_independent_sets(list("abcde"), edges) == 5

    def test_isolated_vertices_join_every_mis(self):
        sets = list(
            maximal_independent_sets(list("abz"), [("a", "b")])
        )
        assert all("z" in s for s in sets)
        assert len(sets) == 2

    def test_budget_exceeded(self):
        # K_{3,3} complement-ish: many MIS; use limit 1 to trip the budget.
        edges = [(f"u{i}", f"v{j}") for i in range(3) for j in range(3)]
        vertices = [f"u{i}" for i in range(3)] + [f"v{j}" for j in range(3)]
        with pytest.raises(EnumerationBudgetExceeded):
            count_maximal_independent_sets(vertices, edges, limit=1)

    @pytest.mark.parametrize("seed", range(6))
    def test_against_networkx(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        vertices = list(range(n))
        edges = sorted(
            {tuple(sorted(rng.sample(vertices, 2))) for _ in range(rng.randint(1, 2 * n))}
        )
        graph = nx.Graph()
        graph.add_nodes_from(vertices)
        graph.add_edges_from(edges)
        complement = nx.complement(graph)
        expected = sum(1 for _ in nx.find_cliques(complement))
        assert count_maximal_independent_sets(vertices, edges) == expected


class TestHypergraphMaximalSets:
    def brute(self, elements, forbidden):
        results = set()
        for size in range(len(elements), -1, -1):
            for combo in itertools.combinations(elements, size):
                chosen = frozenset(combo)
                if any(group <= chosen for group in forbidden):
                    continue
                if any(chosen < other for other in results):
                    continue
                results.add(chosen)
        # Keep only maximal.
        return {
            s
            for s in results
            if not any(s < other for other in results)
        }

    def test_single_triple(self):
        result = set(maximal_sets_avoiding(list("abcd"), [frozenset("abc")]))
        assert result == self.brute(list("abcd"), [frozenset("abc")])

    @pytest.mark.parametrize("seed", range(5))
    def test_random_hypergraphs(self, seed):
        rng = random.Random(seed)
        elements = list(range(rng.randint(3, 7)))
        forbidden = sorted(
            {
                frozenset(rng.sample(elements, rng.randint(2, 3)))
                for _ in range(rng.randint(1, 4))
            },
            key=sorted,
        )
        result = set(maximal_sets_avoiding(elements, forbidden))
        assert result == self.brute(elements, forbidden)

    def test_free_elements_included_everywhere(self):
        result = list(maximal_sets_avoiding([1, 2, 3, 9], [frozenset({1, 2})]))
        assert all(9 in s and 3 in s for s in result)
