"""The anytime solver runtime: budgets, bounds, chains, bit-identity.

Unit coverage for :mod:`repro.solvers.anytime` plus the end-to-end
contract on real sessions: a budgeted solve returns within its deadline
with honest bracketing bounds and a status, an unbudgeted (or
``Budget(None)``) call is bit-identical to the historical exact path, and
degraded values never poison the component caches.
"""

from __future__ import annotations

import pickle

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import make_measure
from repro.measures.mc import MaximalConsistentMeasure
from repro.measures.minimal_repair import MinimumRepairMeasure
from repro.relational import Database, Fact, Schema
from repro.session import MeasurementSession, make_session
from repro.solvers import anytime
from repro.solvers.anytime import (
    FALLBACK,
    FEASIBLE,
    NO_DEADLINE,
    OPTIMAL,
    TIMEOUT,
    BoundedValue,
    Budget,
    Deadline,
    SolveScope,
    SolveTimeout,
    as_budget,
    bounded,
    combine_bounds,
    current_scope,
    moon_moser_bound,
    register_chain,
    registered_chain,
    solve_component,
    solver_scope,
    status_of,
    subset_count_bound,
    worst_status,
)


def _path_workload(n: int = 16):
    """A path-shaped conflict graph: one component, ~1.32^n maximal sets."""
    schema = Schema.from_dict({"R": ["A", "B", "C"]})
    database = Database.from_facts(
        schema, [Fact("R", (i // 2, i, (i + 1) // 2)) for i in range(n)]
    )
    constraints = [
        FunctionalDependency("R", {"A"}, {"B"}),
        FunctionalDependency("R", {"C"}, {"B"}),
    ]
    return constraints, database


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestBoundedValue:
    def test_is_a_float(self):
        value = BoundedValue(3.0, 1.0, 9.0, TIMEOUT)
        assert value == 3.0
        assert value + 1 == 4.0
        assert float(value) == 3.0
        assert value.lower == 1.0 and value.upper == 9.0
        assert value.status == TIMEOUT

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            BoundedValue(1.0, 1.0, 1.0, "MAYBE")

    def test_pickle_round_trip(self):
        value = BoundedValue(3.0, 1.0, 9.0, FEASIBLE)
        clone = pickle.loads(pickle.dumps(value))
        assert (clone, clone.lower, clone.upper, clone.status) == (
            3.0,
            1.0,
            9.0,
            FEASIBLE,
        )

    def test_as_dict(self):
        assert BoundedValue(3.0, 1.0, 9.0, TIMEOUT).as_dict() == {
            "value": 3.0,
            "lower": 1.0,
            "upper": 9.0,
            "status": TIMEOUT,
        }

    def test_bounded_collapses_optimal_to_plain_float(self):
        value = bounded(5.0, 5.0, 5.0, OPTIMAL)
        assert type(value) is float

    def test_bounded_clamps_interval_around_value(self):
        value = bounded(5.0, 6.0, 4.0, TIMEOUT)
        assert value.lower <= 5.0 <= value.upper


class TestStatuses:
    def test_worst_status_severity_order(self):
        assert worst_status([]) == OPTIMAL
        assert worst_status([OPTIMAL, FEASIBLE]) == FEASIBLE
        assert worst_status([FEASIBLE, FALLBACK]) == FALLBACK
        assert worst_status([TIMEOUT, FALLBACK, OPTIMAL]) == TIMEOUT

    def test_status_of(self):
        assert status_of(1.5) == OPTIMAL
        assert status_of(BoundedValue(1.0, 0.0, 2.0, TIMEOUT)) == TIMEOUT


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(-1.0)
        with pytest.raises(ValueError):
            Budget(1.0, prefer="quantum")

    def test_remaining_and_expiry(self):
        clock = _FakeClock()
        budget = Budget(10.0, clock=clock)
        assert budget.remaining() == 10.0
        clock.now = 4.0
        assert budget.remaining() == 6.0
        assert not budget.expired()
        clock.now = 10.0
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_unlimited(self):
        budget = Budget(None)
        assert budget.remaining() is None
        assert not budget.expired()

    def test_as_budget_coercion(self):
        assert as_budget(None) is None
        budget = Budget(1.0)
        assert as_budget(budget) is budget
        assert as_budget(2).seconds == 2.0


class TestDeadline:
    def test_check_raises_on_expiry(self):
        clock = _FakeClock()
        deadline = Deadline(5.0, clock)
        deadline.check()  # not expired yet
        clock.now = 5.0
        with pytest.raises(SolveTimeout):
            deadline.check()

    def test_no_deadline_never_expires(self):
        assert not NO_DEADLINE.expired()
        NO_DEADLINE.check()

    def test_remaining_never_negative(self):
        clock = _FakeClock(now=7.0)
        assert Deadline(5.0, clock).remaining() == 0.0


class TestSolveScope:
    def test_slicing_shares_remaining_across_plan(self):
        clock = _FakeClock()
        scope = SolveScope(Budget(10.0, clock=clock), plan=2)
        first = scope.begin_solve()
        assert first.at == pytest.approx(5.0)
        # The first solve finished early: the second inherits the leftovers.
        clock.now = 1.0
        second = scope.begin_solve()
        assert second.at == pytest.approx(10.0)

    def test_solves_beyond_plan_get_everything_left(self):
        clock = _FakeClock()
        scope = SolveScope(Budget(8.0, clock=clock), plan=1)
        scope.begin_solve()
        clock.now = 2.0
        assert scope.begin_solve().at == pytest.approx(8.0)

    def test_unplanned_scope_hands_out_full_remaining(self):
        clock = _FakeClock()
        scope = SolveScope(Budget(6.0, clock=clock))
        assert scope.begin_solve().at == pytest.approx(6.0)
        assert scope.begin_solve().at == pytest.approx(6.0)

    def test_solver_scope_none_is_noop(self):
        with solver_scope(None) as scope:
            assert scope is None
            assert current_scope() is None

    def test_solver_scope_sets_and_resets(self):
        budget = Budget(1.0)
        assert current_scope() is None
        with solver_scope(budget) as scope:
            assert current_scope() is scope
            assert scope.budget is budget
        assert current_scope() is None


class _FakeMeasure:
    def __init__(self, name: str) -> None:
        self.name = name


@pytest.fixture
def chain_name():
    """A registry slot unique to the test, removed afterwards."""
    name = "_test_measure_anytime"
    yield name
    anytime._REGISTRY.pop(name, None)


class TestSolveComponent:
    def test_no_scope_runs_exact(self, chain_name):
        register_chain(
            chain_name, (lambda *a: (_ for _ in ()).throw(AssertionError()),)
        )
        assert (
            solve_component(_FakeMeasure(chain_name), (), None, None, lambda: 7.0)
            == 7.0
        )

    def test_no_chain_runs_exact_inside_scope(self):
        with solver_scope(Budget(1.0)):
            assert (
                solve_component(
                    _FakeMeasure("_unregistered"), (), None, None, lambda: 3.0
                )
                == 3.0
            )

    def test_first_stage_wins(self, chain_name):
        register_chain(
            chain_name,
            (lambda *a: 4.0, lambda *a: bounded(0.0, 0.0, 1.0, FEASIBLE)),
        )
        with solver_scope(Budget(1.0)):
            value = solve_component(
                _FakeMeasure(chain_name), (), None, None, lambda: 0.0
            )
        assert value == 4.0 and type(value) is float

    def test_none_stage_skips_to_next(self, chain_name):
        register_chain(chain_name, (lambda *a: None, lambda *a: 2.0))
        with solver_scope(Budget(1.0)):
            assert (
                solve_component(
                    _FakeMeasure(chain_name), (), None, None, lambda: 0.0
                )
                == 2.0
            )

    def test_crashing_stage_degrades_to_fallback(self, chain_name):
        def boom(*args):
            raise RuntimeError("backend died")

        register_chain(
            chain_name, (boom, lambda *a: bounded(1.0, 1.0, 8.0, FEASIBLE))
        )
        with solver_scope(Budget(1.0)):
            value = solve_component(
                _FakeMeasure(chain_name), (), None, None, lambda: 0.0
            )
        assert status_of(value) == FALLBACK
        assert (value.lower, value.upper) == (1.0, 8.0)

    def test_prefer_cpsat_without_backend_tags_fallback(self, chain_name):
        if anytime.has_cpsat():
            pytest.skip("ortools installed: the preference is satisfiable")
        register_chain(chain_name, (lambda *a: 6.0, lambda *a: 0.0))
        with solver_scope(Budget(1.0, prefer="cpsat")):
            value = solve_component(
                _FakeMeasure(chain_name), (), None, None, lambda: 0.0
            )
        assert status_of(value) == FALLBACK
        assert float(value) == 6.0

    def test_stage_receives_its_time_slice(self, chain_name):
        seen = []
        register_chain(chain_name, (lambda m, c, d, comp, dl: seen.append(dl) or 1.0,))
        with solver_scope(Budget(1.0), plan=4):
            solve_component(_FakeMeasure(chain_name), (), None, None, lambda: 0.0)
        assert isinstance(seen[0], Deadline)
        assert seen[0].remaining() <= 0.26  # ~a quarter of the budget


class TestCombineBounds:
    def test_sum_combines_each_bound_separately(self):
        parts = [2.0, BoundedValue(3.0, 1.0, 5.0, TIMEOUT)]
        value, lower, upper, status = combine_bounds(sum, parts)
        assert (value, lower, upper, status) == (5.0, 3.0, 7.0, TIMEOUT)

    def test_all_optimal_parts(self):
        value, lower, upper, status = combine_bounds(sum, [1.0, 2.0])
        assert (value, lower, upper, status) == (3.0, 3.0, 3.0, OPTIMAL)


class TestBoundHelpers:
    def test_moon_moser(self):
        assert moon_moser_bound(0) == 1.0
        assert moon_moser_bound(3) == pytest.approx(3.0)
        assert moon_moser_bound(10_000) == float("inf")

    def test_subset_count(self):
        assert subset_count_bound(0) == 1.0
        assert subset_count_bound(4) == 16.0
        assert subset_count_bound(10_000) == float("inf")


class TestSessionBudgets:
    """End-to-end: budgets through real sessions on a hard component."""

    def test_zero_budget_returns_honest_bounds(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            # Budgeted first: a prior exact solve would (correctly) serve
            # the budgeted call from the component cache.
            value = session.measure(mc, budget=0.0)
            exact = session.measure(mc)
        assert status_of(value) == TIMEOUT
        assert value.lower <= exact <= value.upper

    def test_cached_exact_values_beat_the_budget(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            exact = session.measure(mc)
            value = session.measure(mc, budget=0.0)
        # Already-solved components serve their cached exact values — a
        # tight budget never *degrades* what is already known.
        assert value == exact
        assert status_of(value) == OPTIMAL

    def test_unbudgeted_after_budgeted_is_bit_identical(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            session.measure(mc, budget=0.0)
            warm = session.measure(mc)
        with MeasurementSession(constraints, database) as fresh:
            assert warm == fresh.measure(mc)

    def test_degraded_values_never_enter_the_cache(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            session.measure(mc, budget=0.0)
            # A degraded part must not have been admitted anywhere a later
            # unbudgeted read could see it.
            assert not any(
                isinstance(value, BoundedValue)
                for value in session.component_cache._values.values()
            )

    def test_budget_none_is_exact_plain_float(self):
        constraints, database = _path_workload(14)
        mc = MaximalConsistentMeasure()
        with MeasurementSession(constraints, database) as session:
            exact = session.measure(mc)
            unlimited = session.measure(mc, budget=Budget(None))
        assert unlimited == exact
        assert type(unlimited) is float

    def test_session_default_budget_and_explicit_override(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with make_session(constraints, database, time_budget=0.0) as session:
            assert status_of(session.measure(mc)) == TIMEOUT
            exact = session.measure(mc, budget=Budget(None))
            assert status_of(exact) == OPTIMAL

    def test_measure_all_mixes_statuses(self):
        constraints, database = _path_workload(16)
        measures = [make_measure("I_MI"), MaximalConsistentMeasure()]
        with MeasurementSession(constraints, database) as session:
            values = session.measure_all(measures, budget=0.0)
        assert status_of(values["I_MI"]) == OPTIMAL
        assert status_of(values["I_MC"]) == TIMEOUT

    def test_enumeration_limit_degrades_under_budget(self):
        constraints, database = _path_workload(16)
        limited = MaximalConsistentMeasure(enumeration_limit=3)
        with MeasurementSession(constraints, database) as session:
            value = session.measure(limited, budget=10.0)
            exact = session.measure(MaximalConsistentMeasure())
        assert status_of(value) == TIMEOUT
        assert 1.0 <= value.lower <= exact <= value.upper

    def test_ir_budget_bounds_bracket_exact(self):
        constraints, database = _path_workload(16)
        ir = MinimumRepairMeasure()
        with MeasurementSession(constraints, database) as session:
            value = session.measure(ir, budget=0.0)
            exact = session.measure(ir)
        assert status_of(value) == TIMEOUT
        assert value.lower <= exact <= value.upper

    def test_sharded_budget_matches_flat_semantics(self):
        constraints, database = _path_workload(16)
        mc = MaximalConsistentMeasure()
        with make_session(constraints, database, shards="auto") as session:
            value = session.measure(mc, budget=0.0)
            again = session.measure(mc)
        with MeasurementSession(constraints, database) as flat:
            exact = flat.measure(mc)
        assert status_of(value) == TIMEOUT
        assert value.lower <= exact <= value.upper
        assert again == exact
