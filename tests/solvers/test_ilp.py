"""Unit tests for the branch-and-bound 0/1 ILP solver."""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.solvers.ilp import BudgetExceeded, solve_binary_ilp
from repro.solvers.simplex import LpProblem, Sense


def covering_problem(n, sets, costs=None):
    problem = LpProblem(
        num_vars=n,
        objective={i: (costs[i] if costs else 1.0) for i in range(n)},
    )
    for group in sets:
        problem.add_row({v: 1.0 for v in group}, Sense.GE, 1.0)
    return problem


class TestBasics:
    def test_triangle_cover(self):
        problem = covering_problem(3, [(0, 1), (1, 2), (0, 2)])
        solution = solve_binary_ilp(problem)
        assert solution.objective == pytest.approx(2.0)
        assert solution.values.sum() == pytest.approx(2.0)

    def test_integral_lp_shortcut(self):
        problem = covering_problem(2, [(0,), (1,)])
        solution = solve_binary_ilp(problem)
        assert solution.objective == pytest.approx(2.0)
        assert solution.nodes_explored == 1

    def test_infeasible_returns_none(self):
        problem = LpProblem(num_vars=1, objective={0: 1.0})
        problem.add_row({0: 1.0}, Sense.GE, 2.0)  # x <= 1 makes this infeasible
        assert solve_binary_ilp(problem) is None

    def test_incumbent_accepted(self):
        problem = covering_problem(3, [(0, 1), (1, 2)])
        incumbent = np.array([0.0, 1.0, 0.0])
        solution = solve_binary_ilp(problem, incumbent=incumbent)
        assert solution.objective == pytest.approx(1.0)

    def test_bad_incumbent_rejected(self):
        problem = covering_problem(2, [(0, 1)])
        with pytest.raises(ValueError, match="infeasible"):
            solve_binary_ilp(problem, incumbent=np.zeros(2))

    def test_budget_raises(self):
        rng = random.Random(0)
        n = 14
        sets = [tuple(rng.sample(range(n), 2)) for _ in range(30)]
        problem = covering_problem(n, sets)
        with pytest.raises(BudgetExceeded):
            solve_binary_ilp(problem, max_nodes=1)

    def test_weighted_cover(self):
        problem = covering_problem(
            3, [(0, 1), (1, 2)], costs=[5.0, 1.0, 5.0]
        )
        solution = solve_binary_ilp(problem)
        assert solution.objective == pytest.approx(1.0)
        assert solution.values[1] == 1.0


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        import itertools

        rng = random.Random(seed)
        n = rng.randint(3, 8)
        sets = sorted(
            {
                tuple(sorted(rng.sample(range(n), rng.randint(1, 3))))
                for _ in range(rng.randint(2, 8))
            }
        )
        costs = [rng.choice([1.0, 2.0, 0.5]) for _ in range(n)]
        problem = covering_problem(n, sets, costs)
        solution = solve_binary_ilp(problem)

        best = None
        for size in range(n + 1):
            for combo in itertools.combinations(range(n), size):
                chosen = set(combo)
                if all(set(group) & chosen for group in sets):
                    cost = sum(costs[i] for i in chosen)
                    best = cost if best is None else min(best, cost)
        assert solution.objective == pytest.approx(best)
