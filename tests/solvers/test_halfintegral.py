"""Unit tests for the half-integral vertex-cover LP (Nemhauser–Trotter)."""

import random
from fractions import Fraction

import pytest

linprog = pytest.importorskip("scipy.optimize").linprog

from repro.solvers.halfintegral import nemhauser_trotter_kernel, vertex_cover_lp


class TestSmallGraphs:
    def test_single_edge(self):
        value, x = vertex_cover_lp(["a", "b"], [("a", "b")])
        assert value == pytest.approx(1.0)
        assert sum(x.values()) == Fraction(1)

    def test_triangle_all_halves(self):
        value, x = vertex_cover_lp(list("abc"), [("a", "b"), ("b", "c"), ("a", "c")])
        assert value == pytest.approx(1.5)
        assert all(v == Fraction(1, 2) for v in x.values())

    def test_star_center_is_one(self):
        edges = [("c", f"l{i}") for i in range(4)]
        vertices = ["c"] + [f"l{i}" for i in range(4)]
        value, x = vertex_cover_lp(vertices, edges)
        assert value == pytest.approx(1.0)
        assert x["c"] == Fraction(1)
        assert all(x[f"l{i}"] == 0 for i in range(4))

    def test_weighted_star_prefers_leaves(self):
        edges = [("c", f"l{i}") for i in range(3)]
        vertices = ["c", "l0", "l1", "l2"]
        value, x = vertex_cover_lp(vertices, edges, weights={"c": 10.0})
        assert value == pytest.approx(3.0)
        assert x["c"] == Fraction(0)

    def test_self_loops_forced(self):
        value, x = vertex_cover_lp(["a", "b"], [("a", "b")], self_loops=["a"])
        assert x["a"] == Fraction(1)
        assert x["b"] == Fraction(0)
        assert value == pytest.approx(1.0)

    def test_isolated_vertices_zero(self):
        value, x = vertex_cover_lp(["a", "b", "z"], [("a", "b")])
        assert x["z"] == Fraction(0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            vertex_cover_lp(["a", "b"], [("a", "b")], weights={"a": -1})

    def test_half_integrality(self):
        rng = random.Random(3)
        vertices = list(range(12))
        edges = [tuple(rng.sample(vertices, 2)) for _ in range(20)]
        _, x = vertex_cover_lp(vertices, edges)
        assert all(v in (Fraction(0), Fraction(1, 2), Fraction(1)) for v in x.values())


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_weighted_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        vertices = list(range(n))
        edges = set()
        for _ in range(rng.randint(2, 2 * n)):
            u, v = rng.sample(vertices, 2)
            edges.add((min(u, v), max(u, v)))
        edges = sorted(edges)
        weights = {v: rng.uniform(0.5, 3.0) for v in vertices}
        value, x = vertex_cover_lp(vertices, edges, weights)
        costs = [weights[v] for v in vertices]
        a_ub = []
        for u, v in edges:
            row = [0.0] * n
            row[u] = row[v] = -1.0
            a_ub.append(row)
        reference = linprog(
            costs,
            A_ub=a_ub,
            b_ub=[-1.0] * len(edges),
            bounds=[(0, 1)] * n,
            method="highs",
        )
        assert value == pytest.approx(reference.fun, abs=1e-7)
        # Feasibility of the half-integral assignment.
        for u, v in edges:
            assert x[u] + x[v] >= 1


class TestKernel:
    def test_partition_covers_everything(self):
        rng = random.Random(11)
        vertices = list(range(10))
        edges = sorted(
            {tuple(sorted(rng.sample(vertices, 2))) for _ in range(15)}
        )
        ones, zeros, halves = nemhauser_trotter_kernel(vertices, edges)
        assert ones | zeros | halves == set(vertices)
        assert not (ones & zeros or ones & halves or zeros & halves)
        # No edge is entirely inside `zeros` and no zero-half edges exist.
        for u, v in edges:
            assert not (u in zeros and v in zeros)
            assert not (
                (u in zeros and v in halves) or (v in zeros and u in halves)
            )
