"""Unit tests for exact minimum-weight hitting sets / vertex covers."""

import itertools
import random

import pytest

from repro.solvers.vertex_cover import greedy_hitting_set, minimum_hitting_set


def brute_force(sets, weights=None):
    elements = sorted({e for group in sets for e in group}, key=repr)
    weight = lambda e: (weights or {}).get(e, 1.0)
    best = None
    for size in range(len(elements) + 1):
        for combo in itertools.combinations(elements, size):
            chosen = set(combo)
            if all(group & chosen for group in sets):
                cost = sum(weight(e) for e in chosen)
                if best is None or cost < best:
                    best = cost
        # Cannot early-exit by size when weighted; keep scanning.
    return best if best is not None else 0.0


class TestBasics:
    def test_empty_family(self):
        assert minimum_hitting_set([]) == (0.0, set())

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            minimum_hitting_set([frozenset()])

    def test_singleton_forced(self):
        value, cover = minimum_hitting_set([frozenset({"a"}), frozenset({"a", "b"})])
        assert value == 1.0
        assert cover == {"a"}

    def test_triangle(self):
        value, cover = minimum_hitting_set(
            [frozenset("ab"), frozenset("bc"), frozenset("ac")]
        )
        assert value == 2.0
        assert len(cover) == 2

    def test_weighted_star(self):
        sets = [frozenset({"c", f"l{i}"}) for i in range(3)]
        value, cover = minimum_hitting_set(sets, weights={"c": 10.0})
        assert value == 3.0
        assert "c" not in cover

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            minimum_hitting_set([frozenset("ab")], weights={"a": 0.0})

    def test_superset_dropped(self):
        # {a,b,c} is implied by {a,b}; answer is a plain vertex cover.
        value, _ = minimum_hitting_set([frozenset("ab"), frozenset("abc")])
        assert value == 1.0

    def test_hypergraph_hub(self):
        value, cover = minimum_hitting_set([frozenset("abc"), frozenset("cde")])
        assert value == 1.0
        assert cover == {"c"}

    def test_cover_is_valid(self):
        sets = [frozenset("ab"), frozenset("bc"), frozenset("cd"), frozenset("ad")]
        _, cover = minimum_hitting_set(sets)
        assert all(group & cover for group in sets)


class TestGreedy:
    def test_greedy_hits_everything(self):
        rng = random.Random(0)
        sets = [
            frozenset(rng.sample(range(10), rng.randint(1, 3))) for _ in range(12)
        ]
        cover = greedy_hitting_set(sets)
        assert all(group & cover for group in sets)

    def test_greedy_upper_bounds_optimum(self):
        sets = [frozenset("ab"), frozenset("bc"), frozenset("ac")]
        greedy = greedy_hitting_set(sets)
        optimal, _ = minimum_hitting_set(sets)
        assert len(greedy) >= optimal


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_pair_instances(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        sets = sorted(
            {
                frozenset(rng.sample(range(n), 2))
                for _ in range(rng.randint(2, 2 * n))
            },
            key=sorted,
        )
        value, cover = minimum_hitting_set(sets)
        assert value == pytest.approx(brute_force(sets))
        assert all(group & cover for group in sets)

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_random_weighted_instances(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        weights = {e: rng.choice([0.5, 1.0, 2.0, 3.5]) for e in range(n)}
        sets = sorted(
            {
                frozenset(rng.sample(range(n), rng.choice([1, 2, 2, 3])))
                for _ in range(rng.randint(2, 10))
            },
            key=sorted,
        )
        value, cover = minimum_hitting_set(sets, weights)
        assert value == pytest.approx(brute_force(sets, weights))

    @pytest.mark.parametrize("seed", range(20, 26))
    def test_random_hypergraph_instances(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 8)
        sets = sorted(
            {
                frozenset(rng.sample(range(n), rng.randint(2, 4)))
                for _ in range(rng.randint(3, 9))
            },
            key=sorted,
        )
        value, cover = minimum_hitting_set(sets)
        assert value == pytest.approx(brute_force(sets))
        assert all(group & cover for group in sets)
