"""Unit tests for the two-phase simplex solver, cross-checked with scipy."""

import random

import pytest

np = pytest.importorskip("numpy")
linprog = pytest.importorskip("scipy.optimize").linprog

from repro.solvers.simplex import LpProblem, LpStatus, Sense, solve_lp


class TestBasics:
    def test_trivial_covering(self):
        p = LpProblem(num_vars=2, objective={0: 1.0, 1: 1.0})
        p.add_row({0: 1, 1: 1}, Sense.GE, 1)
        s = solve_lp(p)
        assert s.is_optimal
        assert s.objective == pytest.approx(1.0)

    def test_triangle_half_integral(self):
        p = LpProblem(num_vars=3, objective={0: 1.0, 1: 1.0, 2: 1.0})
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            p.add_row({a: 1, b: 1}, Sense.GE, 1)
        assert solve_lp(p).objective == pytest.approx(1.5)

    def test_no_rows_zero_optimum(self):
        p = LpProblem(num_vars=3, objective={0: 1.0, 1: 2.0})
        s = solve_lp(p)
        assert s.objective == 0.0

    def test_no_rows_negative_cost_unbounded(self):
        p = LpProblem(num_vars=1, objective={0: -1.0})
        assert solve_lp(p).status is LpStatus.UNBOUNDED

    def test_unbounded_with_rows(self):
        p = LpProblem(num_vars=2, objective={0: -1.0})
        p.add_row({1: 1}, Sense.LE, 5)
        assert solve_lp(p).status is LpStatus.UNBOUNDED

    def test_infeasible(self):
        p = LpProblem(num_vars=1, objective={0: 1.0})
        p.add_row({0: 1}, Sense.LE, 1)
        p.add_row({0: 1}, Sense.GE, 2)
        assert solve_lp(p).status is LpStatus.INFEASIBLE

    def test_equality_constraint(self):
        p = LpProblem(num_vars=2, objective={0: 1.0, 1: 3.0})
        p.add_row({0: 1, 1: 1}, Sense.EQ, 4)
        s = solve_lp(p)
        assert s.objective == pytest.approx(4.0)
        assert s.values[0] == pytest.approx(4.0)

    def test_upper_bounds(self):
        p = LpProblem(
            num_vars=2,
            objective={0: 1.0, 1: 2.0},
            upper_bounds={0: 0.5, 1: 1.0},
        )
        p.add_row({0: 1, 1: 1}, Sense.GE, 1)
        s = solve_lp(p)
        assert s.objective == pytest.approx(0.5 + 2 * 0.5)

    def test_negative_rhs_normalized(self):
        # x >= 0 with -x <= -2  <=>  x >= 2.
        p = LpProblem(num_vars=1, objective={0: 1.0})
        p.add_row({0: -1}, Sense.LE, -2)
        assert solve_lp(p).objective == pytest.approx(2.0)

    def test_variable_out_of_range_rejected(self):
        p = LpProblem(num_vars=1, objective={0: 1.0})
        p.add_row({5: 1}, Sense.GE, 1)
        with pytest.raises(IndexError):
            solve_lp(p)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_covering_lps(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 10)
        m = rng.randint(1, 14)
        costs = [rng.uniform(0.5, 3.0) for _ in range(n)]
        problem = LpProblem(
            num_vars=n, objective={i: costs[i] for i in range(n)}
        )
        a_ub, b_ub = [], []
        for _ in range(m):
            support = rng.sample(range(n), rng.randint(1, min(4, n)))
            problem.add_row({v: 1.0 for v in support}, Sense.GE, 1.0)
            row = [0.0] * n
            for v in support:
                row[v] = -1.0
            a_ub.append(row)
            b_ub.append(-1.0)
        mine = solve_lp(problem)
        reference = linprog(
            costs, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs"
        )
        assert mine.is_optimal
        assert mine.objective == pytest.approx(reference.fun, abs=1e-7)

    @pytest.mark.parametrize("seed", range(8, 14))
    def test_random_mixed_lps(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        costs = [rng.uniform(0.1, 2.0) for _ in range(n)]
        problem = LpProblem(
            num_vars=n,
            objective={i: costs[i] for i in range(n)},
            upper_bounds={i: 5.0 for i in range(n)},
        )
        a_ub, b_ub = [], []
        for _ in range(rng.randint(1, 6)):
            coeffs = {
                v: rng.choice([1.0, 2.0, 0.5]) for v in rng.sample(range(n), 2)
            }
            problem.add_row(coeffs, Sense.GE, rng.uniform(0.5, 3.0))
            row = [0.0] * n
            for v, c in coeffs.items():
                row[v] = -c
            a_ub.append(row)
            b_ub.append(-problem.rows[-1].rhs)
        mine = solve_lp(problem)
        reference = linprog(
            costs, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 5.0)] * n, method="highs"
        )
        assert mine.is_optimal == reference.success
        if mine.is_optimal:
            assert mine.objective == pytest.approx(reference.fun, abs=1e-7)
            # The solution must actually be feasible.
            for row in problem.rows:
                total = sum(
                    c * mine.values[v] for v, c in row.coefficients.items()
                )
                assert total >= row.rhs - 1e-7
