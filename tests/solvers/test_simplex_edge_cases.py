"""Edge-case and robustness tests for the simplex solver."""

import pytest

np = pytest.importorskip("numpy")

from repro.solvers.simplex import LpProblem, LpStatus, Sense, solve_lp


class TestDegenerateCases:
    def test_degenerate_vertex_terminates(self):
        # Multiple constraints intersecting at the same vertex (degeneracy);
        # Bland's rule must still terminate.
        p = LpProblem(num_vars=2, objective={0: 1.0, 1: 1.0})
        p.add_row({0: 1, 1: 1}, Sense.GE, 1)
        p.add_row({0: 2, 1: 2}, Sense.GE, 2)
        p.add_row({0: 1}, Sense.GE, 0)
        s = solve_lp(p)
        assert s.objective == pytest.approx(1.0)

    def test_redundant_equality_rows(self):
        p = LpProblem(num_vars=2, objective={0: 1.0, 1: 1.0})
        p.add_row({0: 1, 1: 1}, Sense.EQ, 2)
        p.add_row({0: 2, 1: 2}, Sense.EQ, 4)  # redundant duplicate
        s = solve_lp(p)
        assert s.is_optimal
        assert s.objective == pytest.approx(2.0)

    def test_zero_rhs_equality(self):
        p = LpProblem(num_vars=2, objective={0: 1.0, 1: 1.0})
        p.add_row({0: 1, 1: -1}, Sense.EQ, 0)
        p.add_row({0: 1, 1: 1}, Sense.GE, 2)
        s = solve_lp(p)
        assert s.objective == pytest.approx(2.0)
        assert s.values[0] == pytest.approx(s.values[1])

    def test_conflicting_equalities_infeasible(self):
        p = LpProblem(num_vars=1, objective={0: 1.0})
        p.add_row({0: 1}, Sense.EQ, 1)
        p.add_row({0: 1}, Sense.EQ, 2)
        assert solve_lp(p).status is LpStatus.INFEASIBLE

    def test_variable_absent_from_objective(self):
        # Objective mentions only x0; x1 is free to satisfy constraints.
        p = LpProblem(num_vars=2, objective={0: 1.0})
        p.add_row({1: 1}, Sense.GE, 3)
        s = solve_lp(p)
        assert s.objective == pytest.approx(0.0)
        assert s.values[1] >= 3 - 1e-9

    def test_fractional_coefficients(self):
        p = LpProblem(num_vars=2, objective={0: 0.3, 1: 0.7})
        p.add_row({0: 0.5, 1: 0.25}, Sense.GE, 1)
        s = solve_lp(p)
        assert s.is_optimal
        assert s.objective == pytest.approx(0.6)

    def test_large_coefficient_spread(self):
        p = LpProblem(num_vars=2, objective={0: 1e-3, 1: 1e3})
        p.add_row({0: 1, 1: 1}, Sense.GE, 1)
        s = solve_lp(p)
        assert s.objective == pytest.approx(1e-3)

    def test_many_rows_single_var(self):
        p = LpProblem(num_vars=1, objective={0: 1.0})
        for rhs in range(1, 20):
            p.add_row({0: 1}, Sense.GE, rhs)
        s = solve_lp(p)
        assert s.objective == pytest.approx(19.0)
