"""Unit tests for Dinic's max-flow, cross-checked with networkx."""

import random

import networkx as nx
import pytest

from repro.solvers.maxflow import INFINITY, FlowNetwork


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.0)
        assert net.max_flow(0, 1) == pytest.approx(3.0)

    def test_classic_diamond(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 3)
        net.add_edge(1, 2, 1)
        assert net.max_flow(0, 3) == pytest.approx(5.0)

    def test_disconnected(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 2) == 0.0

    def test_same_source_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)

    def test_min_cut_reachability(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 3, 10)
        net.max_flow(0, 3)
        reachable = net.min_cut_reachable(0)
        assert reachable == {0}  # the bottleneck 0->1 is the cut

    def test_flow_accessors(self):
        net = FlowNetwork(2)
        edge = net.add_edge(0, 1, 4)
        net.max_flow(0, 1)
        assert net.flow_on(edge) == pytest.approx(4.0)
        assert net.residual_capacity(edge) == pytest.approx(0.0)

    def test_infinite_capacity(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 2, INFINITY)
        assert net.max_flow(0, 2) == pytest.approx(2.0)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 10)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        net = FlowNetwork(n)
        for _ in range(rng.randint(n, 3 * n)):
            u, v = rng.sample(range(n), 2)
            capacity = rng.randint(1, 10)
            if graph.has_edge(u, v):
                graph[u][v]["capacity"] += capacity
            else:
                graph.add_edge(u, v, capacity=capacity)
            net.add_edge(u, v, capacity)
        value = net.max_flow(0, n - 1)
        expected = nx.maximum_flow_value(graph, 0, n - 1)
        assert value == pytest.approx(expected)
