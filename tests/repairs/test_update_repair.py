"""Unit tests for optimal update repairs."""

import pytest

from repro.constraints import FunctionalDependency
from repro.datasets.example1 import (
    TABLE1_UPDATE_ATTRIBUTES,
    airport_constraints,
    noisy_database_d1,
    noisy_database_d2,
)
from repro.relational import Database, Schema
from repro.repairs import UpdateRepairTooLarge, minimum_update_repair
from repro.violations import is_consistent


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


class TestBasics:
    def test_consistent_needs_nothing(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        repair = minimum_update_repair([FunctionalDependency("R", {"A"}, {"B"})], db)
        assert repair.cost == 0.0

    def test_single_conflict_one_update(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        repair = minimum_update_repair([fd], db)
        assert repair.cost == 1.0

    def test_repair_is_actually_consistent(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (1, "z")])
        repair = minimum_update_repair([fd], db)
        for op in repair.operations:
            op.apply_in_place(db)
        assert is_consistent([fd], db)

    def test_budget_exhaustion_raises(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(
            schema, "R", [(1, "a"), (1, "b"), (1, "c"), (1, "d")]
        )
        with pytest.raises(UpdateRepairTooLarge):
            minimum_update_repair([fd], db, max_updates=1)

    def test_lhs_update_can_beat_rhs_updates(self, schema):
        # Key group of 3 conflicting facts: changing the key of one fact
        # (LHS) splits the group; two RHS updates would be needed otherwise.
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (1, "x")])
        repair = minimum_update_repair([fd], db)
        assert repair.cost == 1.0


class TestTable1:
    def test_d1_restricted_matches_paper(self):
        repair = minimum_update_repair(
            airport_constraints(),
            noisy_database_d1(),
            updatable_attributes=TABLE1_UPDATE_ATTRIBUTES,
        )
        assert repair.cost == 4.0

    def test_d2_restricted_matches_paper(self):
        repair = minimum_update_repair(
            airport_constraints(),
            noisy_database_d2(),
            updatable_attributes=TABLE1_UPDATE_ATTRIBUTES,
        )
        assert repair.cost == 3.0

    def test_d1_unrestricted_is_smaller(self):
        # The formal model (any attribute, fresh values) admits a 3-update
        # repair of D1 via the Municipality attribute — below the paper's 4.
        repair = minimum_update_repair(airport_constraints(), noisy_database_d1())
        assert repair.cost == 3.0

    def test_d2_unrestricted_with_fresh(self):
        repair = minimum_update_repair(
            airport_constraints(), noisy_database_d2(), allow_fresh=True
        )
        assert repair.cost == 2.0

    def test_d2_adom_only(self):
        repair = minimum_update_repair(
            airport_constraints(), noisy_database_d2(), allow_fresh=False
        )
        assert repair.cost == 3.0
