"""Tests for the inconsistency-vs-information-loss tradeoff module."""

import pytest

from repro.constraints import FunctionalDependency
from repro.measures import make_measure
from repro.relational import Database, Fact, Schema
from repro.repairs import (
    DeleteOperation,
    InsertOperation,
    UpdateOperation,
    information_loss,
    score_operations,
    stepwise_resolve,
    update_system,
)


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


@pytest.fixture
def fd():
    return FunctionalDependency("R", {"A"}, {"B"})


class TestInformationLoss:
    def test_delete_costs_arity(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(DeleteOperation(0), db) == 2.0

    def test_delete_missing_costs_zero(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(DeleteOperation(9), db) == 0.0

    def test_update_costs_one(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(UpdateOperation(0, "B", "y"), db) == 1.0

    def test_noop_update_costs_zero(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(UpdateOperation(0, "B", "x"), db) == 0.0

    def test_insert_costs_zero(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(InsertOperation(Fact("R", (2, "y"))), db) == 0.0

    def test_restore_costs_zero(self, schema):
        from repro.repairs import RestoreOperation

        db = Database.from_rows(schema, "R", [(1, "x")])
        assert information_loss(RestoreOperation(5, Fact("R", (2, "y"))), db) == 0.0


class TestScoring:
    def test_best_operation_breaks_most_conflicts(self, schema, fd):
        # Hub fact conflicts with 3 others: deleting it is the best move.
        db = Database.from_rows(
            schema, "R", [(1, "hub"), (1, "a"), (1, "a"), (1, "a")]
        )
        scored = score_operations(make_measure("I_MI"), [fd], db)
        assert scored[0].operation == DeleteOperation(0)
        assert scored[0].inconsistency_reduction == pytest.approx(3.0)

    def test_clean_facts_skipped(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (9, "clean")])
        scored = score_operations(make_measure("I_MI"), [fd], db)
        targets = {s.operation.identifier for s in scored}
        assert 2 not in targets

    def test_update_system_scoring(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        scored = score_operations(
            make_measure("I_MI"), [fd], db, system=update_system()
        )
        assert scored[0].inconsistency_reduction == pytest.approx(1.0)
        assert scored[0].loss == 1.0  # single-cell update beats deletion

    def test_limit_counts_only_scored_candidates(self, schema, fd):
        # Four clean facts precede the conflict pair in identifier order;
        # the problematic-fact filter skips them and they must not consume
        # the budget.
        db = Database.from_rows(
            schema,
            "R",
            [(10, "a"), (11, "b"), (12, "c"), (13, "d"), (1, "x"), (1, "y")],
        )
        scored = score_operations(make_measure("I_MI"), [fd], db, limit=2)
        assert len(scored) == 2
        assert {s.operation.identifier for s in scored} == {4, 5}

    def test_speculative_scoring_matches_copy_path(self, schema, fd):
        from repro.session import MeasurementSession

        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (1, "z"), (2, "p"), (2, "q")]
        )
        for name in ("I_MI", "I_R", "I_lin_R"):
            measure = make_measure(name)
            by_copy = score_operations(measure, [fd], db)
            with MeasurementSession([fd], db) as session:
                speculative = score_operations(
                    measure, [fd], db, session=session
                )
            assert [
                (str(s.operation), s.inconsistency_reduction, s.loss)
                for s in by_copy
            ] == [
                (str(s.operation), s.inconsistency_reduction, s.loss)
                for s in speculative
            ], name

    def test_session_must_own_the_database(self, schema, fd):
        from repro.session import MeasurementSession

        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        other = db.copy()
        with MeasurementSession([fd], other) as session:
            with pytest.raises(ValueError, match="own"):
                score_operations(make_measure("I_MI"), [fd], db, session=session)


class TestStepwiseResolve:
    def test_reaches_consistency(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (2, "p"), (2, "q")]
        )
        trace = stepwise_resolve(make_measure("I_MI"), [fd], db)
        assert trace.consistent
        assert trace.final_inconsistency == 0.0
        assert len(trace.steps) == 2

    def test_input_not_mutated(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        snapshot = db.copy()
        stepwise_resolve(make_measure("I_MI"), [fd], db)
        assert db == snapshot

    def test_stalls_for_drastic_measure(self, schema, fd):
        # I_d never decreases until full consistency, so the greedy resolver
        # finds no positive-benefit step on a 2-conflict database.
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (2, "p"), (2, "q")]
        )
        trace = stepwise_resolve(make_measure("I_d"), [fd], db)
        assert not trace.consistent
        assert trace.steps == []

    def test_update_system_loses_less_information(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        deletion_trace = stepwise_resolve(make_measure("I_MI"), [fd], db)
        update_trace = stepwise_resolve(
            make_measure("I_MI"), [fd], db, system=update_system()
        )
        assert update_trace.consistent
        assert update_trace.total_loss < deletion_trace.total_loss

    def test_max_steps_respected(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (1, "z")])
        trace = stepwise_resolve(make_measure("I_MI"), [fd], db, max_steps=1)
        assert len(trace.steps) == 1
