"""Tests for inclusion dependencies and referential repairs."""

import pytest

from repro.constraints.ind import InclusionDependency, NotDenialExpressible
from repro.relational import Database, Fact, Schema
from repro.repairs import table_cost
from repro.repairs.referential import minimum_referential_repair, referential_ir


@pytest.fixture
def schema():
    return Schema.from_dict({"Order": ["Id", "CustId"], "Cust": ["Id", "Name"]})


@pytest.fixture
def ind():
    return InclusionDependency("Order", "CustId", "Cust", "Id")


def build(schema, orders, customers):
    db = Database(schema)
    for row in orders:
        db.insert(Fact("Order", row))
    for row in customers:
        db.insert(Fact("Cust", row))
    return db


class TestInclusionDependency:
    def test_not_anti_monotonic(self, ind):
        assert not ind.is_anti_monotonic

    def test_no_dc_form(self, ind):
        with pytest.raises(NotDenialExpressible):
            ind.to_dc()

    def test_holds_when_referenced(self, schema, ind):
        db = build(schema, [(1, 7)], [(7, "Ann")])
        assert ind.holds_in(db)

    def test_dangling_detected(self, schema, ind):
        db = build(schema, [(1, 7), (2, 9)], [(7, "Ann")])
        assert ind.dangling_ids(db) == [1]

    def test_deletion_can_break_it(self, schema, ind):
        # Non-anti-monotonicity in action: deleting the parent re-violates.
        db = build(schema, [(1, 7)], [(7, "Ann")])
        assert ind.holds_in(db)
        db.delete(1)  # the Cust fact
        assert not ind.holds_in(db)

    def test_null_references_ignored(self, schema, ind):
        db = build(schema, [(1, None)], [])
        assert ind.holds_in(db)

    def test_attributes_involved(self, ind):
        assert ind.attributes_involved() == {
            ("Order", "CustId"),
            ("Cust", "Id"),
        }


class TestReferentialRepair:
    def test_consistent_is_free(self, schema, ind):
        db = build(schema, [(1, 7)], [(7, "Ann")])
        assert referential_ir([ind], db) == 0.0

    def test_single_dangler_inserts(self, schema, ind):
        # One dangling order: inserting the parent (cost 1) ties deleting
        # the child (cost 1); insertion preferred on ties.
        db = build(schema, [(1, 9)], [])
        repair = minimum_referential_repair([ind], db)
        assert repair.cost == 1.0
        assert ind.holds_in(_apply(db, repair))

    def test_many_danglers_one_insertion(self, schema, ind):
        # Five orders referencing the same missing customer: one insertion
        # beats five deletions.
        db = build(schema, [(i, 9) for i in range(5)], [])
        repair = minimum_referential_repair([ind], db)
        assert repair.cost == 1.0
        assert len(repair.operations) == 1

    def test_expensive_insertion_deletes_instead(self, schema, ind):
        db = build(schema, [(1, 9)], [])
        repair = minimum_referential_repair([ind], db, insertion_cost=5.0)
        assert repair.cost == 1.0
        assert all(op.__class__.__name__ == "DeleteOperation" for op in repair.operations)

    def test_weighted_child_deletions(self, schema, ind):
        db = build(schema, [(1, 9)], [])
        # Child is precious (cost 10): insert instead even at cost 3.
        repair = minimum_referential_repair(
            [ind], db, insertion_cost=3.0, cost_function=table_cost({0: 10.0})
        )
        assert repair.cost == 3.0

    def test_per_value_decomposition(self, schema, ind):
        # Values 8 (three orders) and 9 (one order): insert for 8, and for 9
        # insertion also costs 1 = deletion, so total 2 either way.
        db = build(schema, [(1, 8), (2, 8), (3, 8), (4, 9)], [])
        repair = minimum_referential_repair([ind], db)
        assert repair.cost == 2.0

    def test_repair_restores_consistency(self, schema, ind):
        db = build(schema, [(1, 8), (2, 9), (3, 8)], [(7, "Ann")])
        repair = minimum_referential_repair([ind], db)
        repaired = _apply(db, repair)
        assert ind.holds_in(repaired)

    def test_cascading_inds(self):
        # Region ⊆ Country chained under Cust ⊆ Region: inserting a Region
        # parent dangles under the second IND and must cascade.
        schema = Schema.from_dict(
            {"Cust": ["Id", "RegionId"], "Region": ["Id"], "Country": ["Id"]}
        )
        # Region[Id] ⊆ Country[Id] wants every region in a country... build:
        db = Database(schema)
        db.insert(Fact("Cust", (1, 50)))
        ind1 = InclusionDependency("Cust", "RegionId", "Region", "Id")
        ind2 = InclusionDependency("Region", "Id", "Country", "Id")
        repair = minimum_referential_repair([ind1, ind2], db)
        repaired = _apply(db, repair)
        assert ind1.holds_in(repaired) and ind2.holds_in(repaired)
        # Either: delete the customer (1) or insert Region(50) + Country(50)
        # (2); deletion wins at unit costs... insertion for ind1 ties the
        # single deletion, then cascades, so the solver's greedy tie choice
        # costs 2; accept either exact outcome <= 2.
        assert repair.cost <= 2.0


def _apply(database, repair):
    working = database.copy()
    for operation in repair.operations:
        operation.apply_in_place(working)
    return working
