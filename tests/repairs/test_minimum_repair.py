"""Unit tests for minimum subset repairs and the LP relaxation."""

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.relational import Database, Schema
from repro.repairs import (
    greedy_subset_repair,
    integrality_gap_bound,
    minimum_subset_repair,
    repair_lp_relaxation,
    table_cost,
)
from repro.violations import build_violation_index, is_consistent


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


@pytest.fixture
def fd():
    return FunctionalDependency("R", {"A"}, {"B"})


class TestMinimumRepair:
    def test_consistent_database_zero(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x")])
        repair = minimum_subset_repair([fd], db)
        assert repair.cost == 0.0
        assert repair.deleted_ids == set()

    def test_single_conflict(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        repair = minimum_subset_repair([fd], db)
        assert repair.cost == 1.0
        assert len(repair.deleted_ids) == 1

    def test_repair_restores_consistency(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (1, "z"), (2, "q"), (2, "r")]
        )
        repair = minimum_subset_repair([fd], db)
        assert is_consistent([fd], db.without(repair.deleted_ids))

    def test_key_group_repair_value(self, schema, fd):
        # Group of 4 facts on key 1 with B values x,x,x,y: delete the y.
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "x"), (1, "x"), (1, "y")]
        )
        repair = minimum_subset_repair([fd], db)
        assert repair.cost == 1.0
        assert repair.deleted_ids == {3}

    def test_weighted_repair(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        repair = minimum_subset_repair(
            [fd], db, cost_function=table_cost({0: 5.0, 1: 2.0})
        )
        assert repair.cost == 2.0
        assert repair.deleted_ids == {1}

    def test_unary_dc_forces_deletions(self, schema):
        dc = parse_dc("not(t.A > 10)", "R")
        db = Database.from_rows(schema, "R", [(50, "x"), (5, "y")])
        repair = minimum_subset_repair([dc], db)
        assert repair.deleted_ids == {0}

    def test_operations_accessor(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        repair = minimum_subset_repair([fd], db)
        ops = repair.operations()
        assert len(ops) == 1


class TestGreedy:
    def test_greedy_repairs(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (1, "z")]
        )
        repair = greedy_subset_repair([fd], db)
        assert is_consistent([fd], db.without(repair.deleted_ids))
        optimal = minimum_subset_repair([fd], db)
        assert repair.cost >= optimal.cost


class TestLpRelaxation:
    def test_consistent_zero(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x")])
        value, x = repair_lp_relaxation([fd], db)
        assert value == 0.0
        assert all(v == 0.0 for v in x.values())

    def test_triangle_half(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (1, "z")])
        value, x = repair_lp_relaxation([fd], db)
        assert value == pytest.approx(1.5)
        assert all(v == pytest.approx(0.5) for i, v in x.items())

    def test_lp_lower_bounds_ilp(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (2, "a"), (2, "b"), (2, "c")]
        )
        lp_value, _ = repair_lp_relaxation([fd], db)
        ilp_value = minimum_subset_repair([fd], db).cost
        assert lp_value <= ilp_value + 1e-9
        # Integrality gap bound for FDs is 2 (Section 5.2).
        index = build_violation_index([fd], db)
        assert ilp_value <= integrality_gap_bound(index) * lp_value + 1e-9

    def test_hypergraph_lp(self):
        # A 3-wide DC goes through the generic simplex path.
        from repro.properties.counterexamples import at_most_k_dc

        schema = Schema.from_dict({"R": ["Id"]})
        db = Database.from_rows(schema, "R", [(1,), (2,), (3,)])
        dc = at_most_k_dc(2)  # at most 2 facts: one MI set of width 3
        value, x = repair_lp_relaxation([dc], db)
        assert value == pytest.approx(1.0)
        assert sum(x.values()) == pytest.approx(1.0)

    def test_singleton_forces_one(self, schema):
        dc = parse_dc("not(t.A > 10)", "R")
        db = Database.from_rows(schema, "R", [(50, "x"), (5, "y")])
        value, x = repair_lp_relaxation([dc], db)
        assert x[0] == pytest.approx(1.0)
        assert value == pytest.approx(1.0)
