"""Unit tests for the Theorem 1 dichotomy: classification and poly algorithms."""

import random

import pytest

from repro.constraints import Atom, EqualityGeneratingDependency, example8_egds
from repro.relational import Database, Fact, Schema
from repro.repairs import (
    classify_single_egd,
    ir_single_egd,
    minimum_subset_repair,
    table_cost,
)


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"], "S": ["A", "B"]})


class TestClassification:
    def test_example8(self):
        egds = example8_egds()
        assert classify_single_egd(egds["sigma1"]).tractable
        assert classify_single_egd(egds["sigma2"]).hard
        assert classify_single_egd(egds["sigma3"]).hard
        assert classify_single_egd(egds["sigma4"]).tractable

    def test_non_binary_rejected(self):
        ternary = EqualityGeneratingDependency(
            [Atom("R", ("x", "y", "z"))], "x", "y"
        )
        with pytest.raises(ValueError, match="two binary atoms"):
            classify_single_egd(ternary)

    def test_case_labels(self):
        egds = example8_egds()
        assert "Lemma 2" in classify_single_egd(egds["sigma4"]).case
        assert "path" in classify_single_egd(egds["sigma2"]).case

    def test_hard_shape_refuses_fast_path(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        egd = example8_egds()["sigma2"]
        egd.bind_schema(schema)
        db = Database.from_rows(schema, "R", [(1, 2), (2, 3)])
        with pytest.raises(ValueError, match="path shape"):
            ir_single_egd(egd, db)


class TestPolyAlgorithms:
    def test_fd_shape_key_repair(self, schema):
        egd = example8_egds()["sigma1"]  # A -> B
        egd.bind_schema(schema)
        db = Database.from_rows(schema, "R", [(1, 2), (1, 2), (1, 3), (2, 9)])
        assert ir_single_egd(egd, db) == 1.0  # delete the (1,3) fact

    def test_identical_atoms(self, schema):
        egd = EqualityGeneratingDependency(
            [Atom("R", ("x", "y")), Atom("R", ("x", "y"))], "x", "y"
        )
        egd.bind_schema(schema)
        db = Database.from_rows(schema, "R", [(1, 1), (1, 2), (3, 4)])
        assert ir_single_egd(egd, db) == 2.0  # both off-diagonal facts go

    def test_swapped_atoms(self, schema):
        egd = EqualityGeneratingDependency(
            [Atom("R", ("x", "y")), Atom("R", ("y", "x"))], "x", "y"
        )
        egd.bind_schema(schema)
        db = Database.from_rows(
            schema, "R", [(1, 2), (2, 1), (2, 1), (3, 4), (5, 5)]
        )
        # Pair {(1,2) vs (2,1)x2}: delete the single (1,2). (3,4) unmatched.
        assert ir_single_egd(egd, db) == 1.0

    def test_two_relations_delete_cheaper_side(self, schema):
        egd = example8_egds()["sigma4"]  # R(x,y), S(y,z) -> x = z
        egd.bind_schema(schema)
        db = Database.from_facts(
            schema,
            [Fact("R", (1, 7)), Fact("S", (7, 2)), Fact("S", (7, 3))],
        )
        # Block y=7: R value x=1, S values z in {2,3}; no common value keeps
        # everything; cheapest is deleting the single R fact.
        assert ir_single_egd(egd, db) == 1.0

    def test_weighted_costs_respected(self, schema):
        egd = example8_egds()["sigma1"]
        egd.bind_schema(schema)
        db = Database.from_rows(schema, "R", [(1, 2), (1, 3)])
        cost = ir_single_egd(egd, db, cost_function=table_cost({0: 10.0, 1: 1.0}))
        assert cost == 1.0

    @pytest.mark.parametrize("conclusion", [("x", "y"), ("x", "z"), ("y", "z")])
    def test_first_position_sharing_all_conclusions(self, schema, conclusion):
        left, right = conclusion
        egd = EqualityGeneratingDependency(
            [Atom("R", ("x", "y")), Atom("R", ("x", "z"))], left, right
        )
        egd.bind_schema(schema)
        rng = random.Random(99)
        for _ in range(10):
            rows = [
                (rng.choice([1, 2]), rng.choice([1, 2, 3]))
                for _ in range(rng.randint(1, 6))
            ]
            db = Database.from_rows(schema, "R", rows)
            fast = ir_single_egd(egd, db)
            slow = minimum_subset_repair([egd], db).cost
            assert fast == pytest.approx(slow)

    @pytest.mark.parametrize(
    "conclusion", [("x", "u"), ("x", "v"), ("y", "u"), ("y", "v"), ("x", "y")]
    )
    def test_disjoint_atoms_all_conclusions(self, schema, conclusion):
        left, right = conclusion
        egd = EqualityGeneratingDependency(
            [Atom("R", ("x", "y")), Atom("R", ("u", "v"))], left, right
        )
        egd.bind_schema(schema)
        rng = random.Random(7)
        for _ in range(10):
            rows = [
                (rng.choice([1, 2]), rng.choice([1, 2]))
                for _ in range(rng.randint(1, 5))
            ]
            db = Database.from_rows(schema, "R", rows)
            fast = ir_single_egd(egd, db)
            slow = minimum_subset_repair([egd], db).cost
            assert fast == pytest.approx(slow)

    def test_two_relations_randomized(self, schema):
        egd = example8_egds()["sigma4"]
        egd.bind_schema(schema)
        rng = random.Random(21)
        for _ in range(15):
            db = Database(schema)
            for _ in range(rng.randint(0, 5)):
                db.insert(Fact("R", (rng.choice([1, 2]), rng.choice([1, 2]))))
            for _ in range(rng.randint(0, 5)):
                db.insert(Fact("S", (rng.choice([1, 2]), rng.choice([1, 2]))))
            fast = ir_single_egd(egd, db)
            slow = minimum_subset_repair([egd], db).cost
            assert fast == pytest.approx(slow)
