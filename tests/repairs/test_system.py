"""Unit tests for repair systems (R⊆, update system, R*)."""

import pytest

from repro.constraints import FunctionalDependency
from repro.relational import Database, Schema
from repro.repairs import (
    DeleteOperation,
    UpdateOperation,
    insertion_deletion_system,
    realizes,
    subset_system,
    update_system,
)


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ["A", "B"]})
    return Database.from_rows(schema, "R", [(1, "x"), (1, "y")])


class TestSubsetSystem:
    def test_enumerates_all_deletions(self, db):
        ops = list(subset_system().applicable_operations(db))
        assert ops == [DeleteOperation(0), DeleteOperation(1)]

    def test_sequence_cost_sums(self, db):
        system = subset_system()
        ops = [DeleteOperation(0), DeleteOperation(1)]
        assert system.sequence_cost(db, ops) == 2.0

    def test_sequence_cost_skips_inapplicable(self, db):
        system = subset_system()
        ops = [DeleteOperation(0), DeleteOperation(0)]
        assert system.sequence_cost(db, ops) == 1.0

    def test_apply(self, db):
        system = subset_system()
        result = system.apply(db, [DeleteOperation(0)])
        assert result.ids() == [1]
        assert db.ids() == [0, 1]

    def test_realizes_fds(self, db):
        assert realizes(subset_system(), [FunctionalDependency("R", {"A"}, {"B"})], db)


class TestUpdateSystem:
    def test_enumerates_domain_and_fresh(self, db):
        ops = list(update_system().applicable_operations(db))
        # For fact 0 attribute B ('x'): can become 'y' or a fresh value.
        targets = {
            (op.identifier, op.attribute, op.value)
            for op in ops
            if isinstance(op, UpdateOperation)
        }
        assert (0, "B", "y") in targets
        assert any(
            op.identifier == 0 and op.attribute == "B" and "fresh" in str(op.value)
            for op in ops
        )

    def test_never_yields_noop(self, db):
        for op in update_system().applicable_operations(db):
            assert op.is_applicable(db)

    def test_custom_pool(self, db):
        system = update_system(value_pool=lambda d, i, a: ["Z"])
        ops = list(system.applicable_operations(db))
        assert all(op.value == "Z" for op in ops)


class TestInsertDeleteSystem:
    def test_deletions_always_present(self, db):
        ops = list(insertion_deletion_system().applicable_operations(db))
        assert DeleteOperation(0) in ops

    def test_fact_pool_inserts(self, db):
        from repro.relational import Fact

        system = insertion_deletion_system(
            fact_pool=lambda d: [Fact("R", (9, "q"))]
        )
        ops = list(system.applicable_operations(db))
        assert any(getattr(op, "fact", None) == Fact("R", (9, "q")) for op in ops)
