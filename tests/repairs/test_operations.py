"""Unit tests for repairing operations."""

import pytest

from repro.relational import Database, Fact, Schema
from repro.repairs import (
    DeleteOperation,
    InsertOperation,
    UpdateOperation,
    apply_sequence,
)


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ["A", "B"]})
    return Database.from_rows(schema, "R", [(1, "x"), (2, "y")])


class TestDelete:
    def test_apply_is_functional(self, db):
        result = DeleteOperation(0).apply(db)
        assert 0 not in result
        assert 0 in db

    def test_inapplicable_keeps_database(self, db):
        result = DeleteOperation(99).apply(db)
        assert result == db

    def test_is_applicable(self, db):
        assert DeleteOperation(0).is_applicable(db)
        assert not DeleteOperation(99).is_applicable(db)


class TestInsert:
    def test_insert_adds_fact(self, db):
        result = InsertOperation(Fact("R", (3, "z"))).apply(db)
        assert len(result) == 3

    def test_insert_reuses_minimal_id(self, db):
        db.delete(0)
        result = InsertOperation(Fact("R", (3, "z"))).apply(db)
        assert result[0] == Fact("R", (3, "z"))


class TestUpdate:
    def test_update_value(self, db):
        result = UpdateOperation(0, "B", "changed").apply(db)
        assert result.get_cell(0, "B") == "changed"
        assert db.get_cell(0, "B") == "x"

    def test_noop_update_not_applicable(self, db):
        op = UpdateOperation(0, "B", "x")
        assert not op.is_applicable(db)
        assert op.apply(db) == db

    def test_unknown_attribute_not_applicable(self, db):
        assert not UpdateOperation(0, "Z", 1).is_applicable(db)

    def test_missing_id_not_applicable(self, db):
        assert not UpdateOperation(42, "A", 1).is_applicable(db)


class TestSequences:
    def test_paper_example3_delete_insert(self, db):
        # Deleting and re-inserting simulates an update (Example 3).
        ops = [
            DeleteOperation(0),
            InsertOperation(Fact("R", (1, "fixed"))),
        ]
        result = apply_sequence(db, ops)
        assert result.get_cell(0, "B") == "fixed"
        assert len(result) == 2

    def test_sequence_empty(self, db):
        assert apply_sequence(db, []) == db
