"""Tests for soft (weighted) minimum repairs."""

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.relational import Database, Schema
from repro.repairs import minimum_subset_repair
from repro.repairs.soft import HARD, minimum_soft_repair, soft_repair_measure_value


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B", "C"]})


@pytest.fixture
def fd_ab():
    return FunctionalDependency("R", {"A"}, {"B"})


@pytest.fixture
def fd_ac():
    return FunctionalDependency("R", {"A"}, {"C"})


class TestSoftRepair:
    def test_all_hard_equals_ir(self, schema, fd_ab, fd_ac):
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (1, "y", 5)]
        )
        soft = minimum_soft_repair([fd_ab, fd_ac], [HARD, HARD], db)
        exact = minimum_subset_repair([fd_ab, fd_ac], db)
        assert soft.cost == pytest.approx(exact.cost)
        assert soft.given_up == []

    def test_cheap_rule_given_up(self, schema, fd_ab):
        # Repairing needs 2 deletions; giving up the rule costs 0.5.
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (1, "z", 0)]
        )
        soft = minimum_soft_repair([fd_ab], [0.5], db)
        assert soft.cost == pytest.approx(0.5)
        assert soft.given_up == [fd_ab]
        assert soft.deleted_ids == set()

    def test_expensive_rule_repaired(self, schema, fd_ab):
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        soft = minimum_soft_repair([fd_ab], [10.0], db)
        assert soft.cost == pytest.approx(1.0)
        assert soft.given_up == []
        assert len(soft.deleted_ids) == 1

    def test_mixed_give_up(self, schema, fd_ab, fd_ac):
        # fd_ab needs 1 deletion; fd_ac needs 2 but costs only 0.25 to drop.
        db = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "q", 1), (2, "q", 2), (2, "q", 3)],
        )
        soft = minimum_soft_repair([fd_ab, fd_ac], [HARD, 0.25], db)
        assert soft.given_up == [fd_ac]
        assert soft.cost == pytest.approx(1.25)

    def test_sharing_facts_between_rules(self, schema, fd_ab, fd_ac):
        # One fact violates both rules: deleting it serves both, so giving
        # up either rule buys nothing.
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 9)]
        )
        soft = minimum_soft_repair([fd_ab, fd_ac], [5.0, 5.0], db)
        assert soft.cost == pytest.approx(1.0)
        assert soft.given_up == []

    def test_consistent_database_free(self, schema, fd_ab):
        db = Database.from_rows(schema, "R", [(1, "x", 0)])
        assert soft_repair_measure_value([fd_ab], [1.0], db) == 0.0

    def test_weight_validation(self, schema, fd_ab):
        db = Database.from_rows(schema, "R", [(1, "x", 0)])
        with pytest.raises(ValueError, match="align"):
            minimum_soft_repair([fd_ab], [], db)
        with pytest.raises(ValueError, match="non-negative"):
            minimum_soft_repair([fd_ab], [-1.0], db)

    def test_unary_dc_soft(self, schema):
        dc = parse_dc("not(t.A > 10)", "R")
        db = Database.from_rows(schema, "R", [(50, "x", 0), (60, "y", 0)])
        # Two violating facts: repair costs 2, giving up costs 1.5.
        soft = minimum_soft_repair([dc], [1.5], db)
        assert soft.cost == pytest.approx(1.5)
        assert soft.given_up == [dc]
