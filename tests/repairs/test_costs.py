"""Unit tests for cost functions."""

import pytest

from repro.relational import Database, Schema
from repro.repairs import (
    DeleteOperation,
    UpdateOperation,
    deletion_costs,
    subset_cost,
    table_cost,
    unit_cost,
)


@pytest.fixture
def plain_db():
    schema = Schema.from_dict({"R": ["A"]})
    return Database.from_rows(schema, "R", [(1,), (2,)])


@pytest.fixture
def costed_db():
    schema = Schema.from_dict({"R": ["A", "cost"]})
    return Database.from_rows(schema, "R", [(1, 2.5), (2, 7.0)])


class TestUnitCost:
    def test_applicable_costs_one(self, plain_db):
        assert unit_cost(DeleteOperation(0), plain_db) == 1.0

    def test_inapplicable_costs_zero(self, plain_db):
        assert unit_cost(DeleteOperation(99), plain_db) == 0.0

    def test_noop_update_costs_zero(self, plain_db):
        assert unit_cost(UpdateOperation(0, "A", 1), plain_db) == 0.0


class TestSubsetCost:
    def test_default_unit(self, plain_db):
        assert subset_cost(DeleteOperation(0), plain_db) == 1.0

    def test_cost_attribute_used(self, costed_db):
        assert subset_cost(DeleteOperation(0), costed_db) == 2.5
        assert subset_cost(DeleteOperation(1), costed_db) == 7.0

    def test_inapplicable_zero(self, costed_db):
        assert subset_cost(DeleteOperation(9), costed_db) == 0.0


class TestTableCost:
    def test_lookup(self, plain_db):
        cost = table_cost({0: 10.0})
        assert cost(DeleteOperation(0), plain_db) == 10.0
        assert cost(DeleteOperation(1), plain_db) == 1.0

    def test_materialized_costs(self, costed_db):
        costs = deletion_costs(costed_db, subset_cost)
        assert costs == {0: 2.5, 1: 7.0}
