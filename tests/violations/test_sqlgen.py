"""Unit tests for SQL generation of conflict queries."""

from repro.constraints import FunctionalDependency, parse_dc
from repro.relational import Database, Schema
from repro.violations import conflict_rows, conflict_sql


class TestConflictSql:
    def test_fd_query_shape(self):
        dc = FunctionalDependency("Tax", {"St"}, {"Rate"}).to_dc()
        sql = conflict_sql(dc)
        assert sql.startswith("SELECT DISTINCT T0.ID, T1.ID")
        assert "FROM Tax AS T0, Tax AS T1" in sql
        assert "T0.St = T1.St" in sql
        assert "T0.Rate <> T1.Rate" in sql

    def test_unary_query_shape(self):
        dc = parse_dc("not(t.High < t.Low)", "Stock")
        sql = conflict_sql(dc)
        assert sql == (
            "SELECT DISTINCT T0.ID FROM Stock AS T0 WHERE T0.High < T0.Low"
        )

    def test_string_constant_escaped(self):
        dc = parse_dc("not(t.Name = 'O''Hare')", "Airport")
        assert "'O''Hare'" in conflict_sql(dc)

    def test_numeric_constant(self):
        dc = parse_dc("not(t.Score > 100)", "H")
        assert "T0.Score > 100" in conflict_sql(dc)


class TestConflictRows:
    def test_pairs_and_symmetry(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        dc = FunctionalDependency("R", {"A"}, {"B"}).to_dc()
        rows = conflict_rows(dc, db)
        # The raw SQL result contains both orders, like the paper's query.
        assert sorted(rows) == [(0, 1), (1, 0)]

    def test_nested_loop_matches(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (2, "x")])
        dc = FunctionalDependency("R", {"A"}, {"B"}).to_dc()
        assert sorted(conflict_rows(dc, db)) == sorted(
            conflict_rows(dc, db, force_nested_loop=True)
        )
