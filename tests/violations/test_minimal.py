"""Unit tests for minimal-inconsistent-subset enumeration."""

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.constraints.base import ComparisonOp
from repro.relational import Database, Schema
from repro.violations import (
    build_violation_index,
    find_first_violation,
    is_consistent,
    lower_constraints,
    violations_of,
)
from repro.violations.minimal import find_first_violation


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B", "C"]})


class TestFdViolations:
    def test_consistent_database(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x", 0), (2, "y", 0)])
        index = build_violation_index([FunctionalDependency("R", {"A"}, {"B"})], db)
        assert index.is_consistent()
        assert index.mi_sets == []

    def test_single_violation_pair(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        index = build_violation_index([FunctionalDependency("R", {"A"}, {"B"})], db)
        assert index.mi_sets == [frozenset({0, 1})]

    def test_clique_of_violations(self, schema):
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (1, "z", 0)]
        )
        index = build_violation_index([FunctionalDependency("R", {"A"}, {"B"})], db)
        assert len(index.mi_sets) == 3  # all pairs

    def test_duplicates_do_not_violate(self, schema):
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "x", 0)])
        assert is_consistent([FunctionalDependency("R", {"A"}, {"B"})], db)

    def test_multi_rhs_fd(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B", "C"})
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "x", 5)])
        index = build_violation_index([fd], db)
        assert index.mi_sets == [frozenset({0, 1})]


class TestUnaryDc:
    def test_singleton_violations(self, schema):
        dc = parse_dc("not(t.A > t.C)", "R")
        db = Database.from_rows(schema, "R", [(5, "x", 1), (0, "y", 1)])
        index = build_violation_index([dc], db)
        assert index.mi_sets == [frozenset({0})]
        assert index.self_inconsistent == {0}

    def test_constant_dc(self, schema):
        dc = DenialConstraint(
            [("t", "R")],
            [Predicate(Term.col("t", "B"), ComparisonOp.EQ, Term.const("bad"))],
        )
        db = Database.from_rows(schema, "R", [(1, "bad", 0), (1, "ok", 0)])
        index = build_violation_index([dc], db)
        assert index.mi_sets == [frozenset({0})]


class TestMinimization:
    def test_singleton_absorbs_pairs(self, schema):
        # A fact violating a unary DC also appears in FD pairs; the MI
        # family keeps only the singleton for it.
        unary = parse_dc("not(t.A > t.C)", "R")
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(5, "x", 1), (5, "y", 1)])
        index = build_violation_index([unary, fd], db)
        # id0 and id1 both violate the unary DC (5 > 1): singletons {0},{1}
        # absorb the FD pair {0,1}.
        assert sorted(tuple(sorted(s)) for s in index.mi_sets) == [(0,), (1,)]

    def test_max_width(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        index = build_violation_index([fd], db)
        assert index.max_width == 2

    def test_problematic_union(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (9, "z", 0)]
        )
        index = build_violation_index([fd], db)
        assert index.problematic == {0, 1}


class TestWideDc:
    def test_three_variable_dc(self):
        schema = Schema.from_dict({"R": ["Id"]})
        three = DenialConstraint(
            [("t0", "R"), ("t1", "R"), ("t2", "R")],
            [
                Predicate(Term.col("t0", "Id"), ComparisonOp.NE, Term.col("t1", "Id")),
                Predicate(Term.col("t0", "Id"), ComparisonOp.NE, Term.col("t2", "Id")),
                Predicate(Term.col("t1", "Id"), ComparisonOp.NE, Term.col("t2", "Id")),
            ],
            name="at_most_2",
        )
        db = Database.from_rows(schema, "R", [(1,), (2,), (3,), (4,)])
        index = build_violation_index([three], db)
        assert len(index.mi_sets) == 4  # C(4,3)
        assert index.max_width == 3

    def test_wide_dc_consistent(self):
        schema = Schema.from_dict({"R": ["Id"]})
        three = DenialConstraint(
            [("t0", "R"), ("t1", "R"), ("t2", "R")],
            [
                Predicate(Term.col("t0", "Id"), ComparisonOp.NE, Term.col("t1", "Id")),
                Predicate(Term.col("t0", "Id"), ComparisonOp.NE, Term.col("t2", "Id")),
                Predicate(Term.col("t1", "Id"), ComparisonOp.NE, Term.col("t2", "Id")),
            ],
        )
        db = Database.from_rows(schema, "R", [(1,), (2,)])
        assert is_consistent([three], db)


class TestHelpers:
    def test_find_first_violation(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        violation = find_first_violation([fd], db)
        assert violation is not None
        assert violation.fact_ids == frozenset({0, 1})

    def test_find_first_violation_consistent(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(schema, "R", [(1, "x", 0)])
        assert find_first_violation([fd], db) is None

    def test_violations_of_single_dc(self, schema):
        dc = parse_dc("not(t.A = t'.A, t.B != t'.B)", "R")
        db = Database.from_rows(schema, "R", [(1, "x", 0), (1, "y", 0)])
        assert violations_of(dc, db) == [frozenset({0, 1})]

    def test_lower_constraints_mixed(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B", "C"})
        dc = parse_dc("not(t.A > t.C)", "R")
        lowered = lower_constraints([fd, dc], schema)
        assert len(lowered) == 3

    def test_nested_loop_agrees_with_hash(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (2, "x", 0), (2, "z", 0)]
        )
        fast = build_violation_index([fd], db).mi_sets
        slow = build_violation_index([fd], db, force_nested_loop=True).mi_sets
        assert sorted(map(sorted, fast)) == sorted(map(sorted, slow))
