"""``conflict_rows`` == probe-enumerated witness sets, on randomized DCs.

The SQL conflict query (:func:`repro.violations.sqlgen.conflict_query`) and
the session's probe enumerator are two independent implementations of the
same definition — "all assignments of facts to tuple variables satisfying
every predicate".  This suite generates random DCs (equality joins,
inequalities, constants, NULL-heavy columns, widths 1–3) over random
databases and pins that the identifier tuples the SQL engine returns
collapse to exactly the witness fact-id sets a brute-force evaluation of
the DC body produces.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.constraints.base import ComparisonOp
from repro.constraints.dc import DenialConstraint, Predicate, Term
from repro.relational import Database, Fact, Schema
from repro.violations import conflict_query, conflict_rows
from repro.violations.sqlgen import conflict_sql

_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]
_ATTRIBUTES = ["A", "B"]


def _random_instance(rng: random.Random):
    relations = [f"R{k}" for k in range(rng.randint(1, 2))]
    schema = Schema.from_dict({name: list(_ATTRIBUTES) for name in relations})
    database = Database(schema)
    for name in relations:
        for _ in range(rng.randint(2, 14)):
            values = tuple(
                None if rng.random() < 0.15 else rng.randint(0, 3)
                for _ in _ATTRIBUTES
            )
            database.insert(Fact(name, values))
    width = rng.randint(1, 3)
    variables = [(f"t{k}", rng.choice(relations)) for k in range(width)]
    names = [variable for variable, _ in variables]
    predicates = []
    for _ in range(rng.randint(1, 3)):
        left = Term.col(rng.choice(names), rng.choice(_ATTRIBUTES))
        if rng.random() < 0.3:
            right = Term.const(rng.randint(0, 3))
        else:
            right = Term.col(rng.choice(names), rng.choice(_ATTRIBUTES))
        predicates.append(Predicate(left, rng.choice(_OPS), right))
    dc = DenialConstraint(variables, predicates, name="random_dc")
    return database, dc


def _brute_force_witnesses(
    database: Database, dc: DenialConstraint
) -> set[frozenset[int]]:
    """Every satisfying assignment, by exhaustive enumeration."""
    schema = database.schema
    pools = [
        [
            (identifier, database[identifier])
            for identifier in database.relation_ids(relation)
        ]
        for _, relation in dc.variables
    ]
    names = [variable for variable, _ in dc.variables]
    found: set[frozenset[int]] = set()
    for combo in itertools.product(*pools):
        assignment = {
            name: fact for name, (_, fact) in zip(names, combo)
        }
        if all(p.evaluate(assignment, schema) for p in dc.predicates):
            found.add(frozenset(identifier for identifier, _ in combo))
    return found


class TestConflictRowsConformance:
    @pytest.mark.parametrize("case", range(25))
    def test_rows_match_brute_force(self, case, case_rng):
        rng = case_rng
        database, dc = _random_instance(rng)
        expected = _brute_force_witnesses(database, dc)
        rows = conflict_rows(dc, database)
        assert {frozenset(row) for row in rows} == expected
        # Nested-loop execution of the same query agrees row-for-row.
        assert sorted(rows) == sorted(
            conflict_rows(dc, database, force_nested_loop=True)
        )

    @pytest.mark.parametrize("case", range(10))
    def test_query_ast_matches_rendered_sql(self, case, case_rng):
        """conflict_query is the parse of conflict_sql whenever both exist."""
        from repro.sqlengine import parse_query

        rng = case_rng
        _, dc = _random_instance(rng)
        assert conflict_query(dc) == parse_query(conflict_sql(dc))

    def test_unrenderable_constant_still_executes(self):
        """AST construction sidesteps SQL text for constants with no literal."""
        schema = Schema.from_dict({"R": ["A"]})
        database = Database(schema)
        database.insert(Fact("R", (None,)))
        database.insert(Fact("R", (1,)))
        dc = DenialConstraint(
            [("t", "R")],
            [Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.const(None))],
            name="null_const",
        )
        # EQ with NULL is never satisfied — no rows, no lexer crash.
        assert conflict_rows(dc, database) == []
