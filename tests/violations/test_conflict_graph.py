"""Unit tests for conflict graphs and hypergraphs."""

import pytest

from repro.constraints import FunctionalDependency
from repro.relational import Database, Schema
from repro.violations import (
    build_violation_index,
    conflict_graph_from_index,
    conflict_hypergraph_from_index,
    connected_components,
)
from repro.violations.minimal import ViolationIndex


@pytest.fixture
def index_pairs():
    index = ViolationIndex()
    index.mi_sets = [frozenset({0, 1}), frozenset({1, 2}), frozenset({5})]
    return index


class TestConflictGraph:
    def test_from_index(self, index_pairs):
        graph = conflict_graph_from_index(index_pairs)
        assert graph.vertices == {0, 1, 2, 5}
        assert graph.edges == {(0, 1), (1, 2)}
        assert graph.self_loops == {5}

    def test_wide_set_rejected(self):
        index = ViolationIndex()
        index.mi_sets = [frozenset({0, 1, 2})]
        with pytest.raises(ValueError, match="width"):
            conflict_graph_from_index(index)

    def test_neighbors_and_degree(self, index_pairs):
        graph = conflict_graph_from_index(index_pairs)
        assert graph.neighbors(1) == {0, 2}
        assert graph.degree(0) == 1
        assert graph.degree(5) == 0

    def test_components(self, index_pairs):
        graph = conflict_graph_from_index(index_pairs)
        components = connected_components(graph)
        assert components == [{0, 1, 2}, {5}]

    def test_fd_conflict_graph_end_to_end(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y"), (2, "z")])
        index = build_violation_index([FunctionalDependency("R", {"A"}, {"B"})], db)
        graph = conflict_graph_from_index(index)
        assert graph.edges == {(0, 1)}
        assert graph.num_edges == 1


class TestConflictHypergraph:
    def test_width_and_vertices(self):
        index = ViolationIndex()
        index.mi_sets = [frozenset({0, 1, 2}), frozenset({3, 4})]
        hyper = conflict_hypergraph_from_index(index)
        assert hyper.width == 3
        assert not hyper.is_graph
        assert hyper.vertices() == {0, 1, 2, 3, 4}

    def test_empty(self):
        hyper = conflict_hypergraph_from_index(ViolationIndex())
        assert hyper.width == 0
        assert hyper.is_graph
