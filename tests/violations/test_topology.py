"""ComponentTopology: incrementally maintained minimization + components.

The anchor invariant: after *any* delta stream — inserts, deletes that
split components, updates that merge them — the session's live topology is
content-identical to ``build_violation_index(Σ, D).components()`` computed
from scratch, and the assembled ``mi_sets`` list is bit-identical to the
from-scratch minimization.  On top of that, unaffected components must keep
*object identity* across deltas (what speculative scoring relies on), and
the generation counter must advance exactly when a flush changed some
witness.
"""

from __future__ import annotations

import pytest

from repro.constraints import FunctionalDependency
from repro.relational import Database, Fact, Schema
from repro.session import MeasurementSession
from repro.violations import build_violation_index

from ..session.test_session import (
    _constraint_suites,
    _random_fact,
    _random_mutation,
)


@pytest.fixture
def schema() -> Schema:
    return Schema.from_dict({"R": ["A", "B", "C"]})


def _assert_matches_scratch(session: MeasurementSession, constraints, database):
    """The full topology-vs-from-scratch content comparison."""
    full = build_violation_index(constraints, database)
    index = session.index()
    assert index.mi_sets == full.mi_sets
    live = index.components()
    scratch = full.components()
    assert [c.mi_sets for c in live] == [c.mi_sets for c in scratch]
    assert [c.problematic for c in live] == [c.problematic for c in scratch]
    assert [
        {(v.fact_ids, v.constraint.name) for v in c.per_constraint}
        for c in live
    ] == [
        {(v.fact_ids, v.constraint.name) for v in c.per_constraint}
        for c in scratch
    ]
    topology = session.topology
    assert set(topology.problematic()) == full.problematic
    for component in topology.components():
        assert component.facts == set().union(*component.index.mi_sets)
        assert component.minimum == min(component.facts)
        for fact in component.facts:
            assert topology.component_of(fact) is component


class TestRandomizedEquivalence:
    @pytest.mark.slow
    @pytest.mark.parametrize("suite", ["binary", "wide"])
    @pytest.mark.parametrize("case", [0, 1, 2])
    def test_delta_streams_match_scratch_split(self, schema, suite, case, case_rng):
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(22)]
        )
        constraints = _constraint_suites()[suite]
        with MeasurementSession(constraints, database) as session:
            _assert_matches_scratch(session, constraints, database)
            for _ in range(90):
                _random_mutation(rng, database)
                _assert_matches_scratch(session, constraints, database)

    @pytest.mark.parametrize("case", [0, 1])
    def test_batched_deltas_match_scratch_split(self, schema, case, case_rng):
        """Many pending mutations fold into one regional rebuild."""
        rng = case_rng
        database = Database.from_facts(
            schema, [_random_fact(rng) for _ in range(20)]
        )
        constraints = _constraint_suites()["binary"]
        with MeasurementSession(constraints, database) as session:
            for _ in range(12):
                for _ in range(rng.randint(2, 8)):
                    _random_mutation(rng, database)
                _assert_matches_scratch(session, constraints, database)


class TestStructuralDeltas:
    """Engineered splits and merges along a five-fact conflict path."""

    #: Two FDs chain conflicts across A-groups (via FD A→B) and C-groups
    #: (via FD C→B): f0—f1—f2—f3—f4 is a path with f2 as cut vertex.
    PATH_ROWS = [
        (1, "x", 7),  # f0 — FD1 conflict with f1 (A=1, B differs)
        (1, "y", 8),  # f1 — FD2 conflict with f2 (C=8, B differs)
        (2, "z", 8),  # f2 — FD1 conflict with f3 (A=2, B differs)
        (2, "w", 9),  # f3 — FD2 conflict with f4 (C=9, B differs)
        (3, "v", 9),  # f4
    ]

    @staticmethod
    def _constraints():
        return [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"C"}, {"B"}),
        ]

    def test_delete_splits_component(self, schema):
        database = Database.from_rows(schema, "R", self.PATH_ROWS)
        constraints = self._constraints()
        with MeasurementSession(constraints, database) as session:
            assert len(session.index().components()) == 1
            database.delete(2)  # the cut vertex
            components = session.index().components()
            assert [c.problematic for c in components] == [{0, 1}, {3, 4}]
            _assert_matches_scratch(session, constraints, database)

    def test_update_merges_components(self, schema):
        rows = list(self.PATH_ROWS)
        rows[2] = (9, "z", 1)  # f2 starts disconnected
        database = Database.from_rows(schema, "R", rows)
        constraints = self._constraints()
        with MeasurementSession(constraints, database) as session:
            assert [c.problematic for c in session.index().components()] == [
                {0, 1},
                {3, 4},
            ]
            database.update(2, "A", 2)  # FD1 edge to f3
            database.update(2, "C", 8)  # FD2 edge to f1 — bridges both
            components = session.index().components()
            assert [c.problematic for c in components] == [{0, 1, 2, 3, 4}]
            _assert_matches_scratch(session, constraints, database)

    def test_untouched_components_keep_identity(self, schema):
        database = Database.from_rows(
            schema,
            "R",
            [(1, "x", 0), (1, "y", 0), (2, "p", 1), (2, "q", 1)],
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        with MeasurementSession(constraints, database) as session:
            before = session.topology.components()
            assert len(before) == 2
            untouched = before[1]
            database.update(0, "B", "y2")  # perturbs component {0, 1} only
            session.index()
            after = session.topology.components()
            assert after[1] is untouched  # object identity ⇒ cached values ok
            assert after[0] is not before[0]
            _assert_matches_scratch(session, constraints, database)


class TestGenerationSemantics:
    def test_no_witness_delta_keeps_generation(self, schema):
        database = Database.from_rows(
            schema, "R", [(1, "x", 0), (1, "y", 0), (5, "q", 9)]
        )
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        with MeasurementSession(constraints, database) as session:
            session.index()
            generation = session.topology.generation
            database.update(2, "C", 3)  # fact 2 binds no witness
            session.index()
            assert session.topology.generation == generation
            database.update(0, "B", "z")  # retract + re-insert the conflict
            session.index()
            assert session.topology.generation > generation

    def test_refresh_resets_the_topology(self, schema):
        database = Database.from_rows(schema, "R", [(1, "x", 5), (1, "y", 5)])
        constraints = [FunctionalDependency("R", {"A"}, {"B"})]
        session = MeasurementSession(constraints, database)
        session.close()
        database.insert(Fact("R", (2, "x", 0)))
        database.insert(Fact("R", (2, "y", 0)))
        index = session.refresh()
        assert len(index.components()) == 2
        _assert_matches_scratch(session, constraints, database)
