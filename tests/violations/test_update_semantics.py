"""Semantics checks: violation detection tracks database mutations.

The measures are recomputed after every noise/repair step in the
experiments; these tests pin down that the violation index reflects
updates, deletions and insertions correctly (no stale caching anywhere).
"""

import pytest

from repro.constraints import FunctionalDependency
from repro.relational import Database, Fact, Schema
from repro.violations import build_violation_index, is_consistent


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


@pytest.fixture
def fd():
    return FunctionalDependency("R", {"A"}, {"B"})


class TestMutationTracking:
    def test_update_introduces_violation(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (2, "x")])
        assert is_consistent([fd], db)
        db.update(1, "A", 1)
        index = build_violation_index([fd], db)
        assert index.mi_sets == []  # both have B='x': still consistent
        db.update(1, "B", "y")
        index = build_violation_index([fd], db)
        assert index.mi_sets == [frozenset({0, 1})]

    def test_update_resolves_violation(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        db.update(1, "B", "x")
        assert is_consistent([fd], db)

    def test_delete_resolves_violation(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "y")])
        db.delete(0)
        assert is_consistent([fd], db)

    def test_insert_introduces_violation(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x")])
        db.insert(Fact("R", (1, "y")))
        index = build_violation_index([fd], db)
        assert index.mi_sets == [frozenset({0, 1})]

    def test_reinserted_id_participates(self, schema, fd):
        db = Database.from_rows(schema, "R", [(1, "x"), (1, "x")])
        db.delete(0)
        new_id = db.insert(Fact("R", (1, "z")))
        assert new_id == 0
        index = build_violation_index([fd], db)
        assert index.mi_sets == [frozenset({0, 1})]

    def test_mi_ids_are_live_ids(self, schema, fd):
        db = Database.from_rows(
            schema, "R", [(1, "x"), (1, "y"), (1, "z")]
        )
        db.delete(1)
        index = build_violation_index([fd], db)
        assert index.mi_sets == [frozenset({0, 2})]
