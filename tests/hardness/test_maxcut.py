"""Tests for the MaxCut reduction (Theorem 1 / Lemma 1)."""

import random

import pytest

from repro.hardness import (
    MaxCutInstance,
    brute_force_max_cut,
    build_reduction,
    cut_to_repair_cost,
    path_egd,
    verify_reduction,
)
from repro.repairs import classify_single_egd


class TestInstances:
    def test_reserved_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            MaxCutInstance(("1", "a"), ())

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loops"):
            MaxCutInstance(("a",), (("a", "a"),))

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MaxCutInstance(("a",), (("a", "b"),))


class TestBruteForce:
    def test_triangle(self):
        instance = MaxCutInstance(("a", "b", "c"), (("a", "b"), ("b", "c"), ("a", "c")))
        size, side = brute_force_max_cut(instance)
        assert size == 2

    def test_bipartite_cut_is_all_edges(self):
        edges = tuple((f"u{i}", f"v{j}") for i in range(2) for j in range(2))
        instance = MaxCutInstance(("u0", "u1", "v0", "v1"), edges)
        size, _ = brute_force_max_cut(instance)
        assert size == 4

    def test_empty_graph(self):
        instance = MaxCutInstance(("a", "b"), ())
        assert brute_force_max_cut(instance)[0] == 0


class TestReduction:
    def test_path_egd_is_hard_shape(self):
        assert classify_single_egd(path_egd()).hard

    def test_database_size(self):
        instance = MaxCutInstance(("a", "b"), (("a", "b"),))
        reduction = build_reduction(instance)
        # 2 anchors per vertex + 2 facts per edge.
        assert len(reduction.database) == 2 * 2 + 2 * 1

    def test_anchor_costs(self):
        instance = MaxCutInstance(("a", "b"), (("a", "b"),))
        reduction = build_reduction(instance)
        from repro.repairs import DeleteOperation

        costs = sorted(
            reduction.cost_function(DeleteOperation(i), reduction.database)
            for i in reduction.database.ids()
        )
        assert costs == [1.0, 1.0, 2.0, 2.0, 2.0, 2.0]  # m+1 = 2

    @pytest.mark.parametrize(
        "name,vertices,edges,expected_cut",
        [
            ("edge", ("a", "b"), (("a", "b"),), 1),
            ("triangle", ("a", "b", "c"), (("a", "b"), ("b", "c"), ("a", "c")), 2),
            (
                "square",
                ("a", "b", "c", "d"),
                (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")),
                4,
            ),
        ],
    )
    def test_both_directions(self, name, vertices, edges, expected_cut):
        instance = MaxCutInstance(vertices, edges)
        certificate = verify_reduction(instance)
        assert certificate["max_cut"] == expected_cut
        assert certificate["matches"] == 1.0
        assert certificate["computed_ir"] == certificate["expected_ir"]
        assert certificate["constructed_repair_cost"] == certificate["expected_ir"]

    def test_random_graph(self):
        rng = random.Random(5)
        vertices = tuple(f"v{i}" for i in range(5))
        edges = tuple(
            sorted(
                {
                    tuple(sorted(rng.sample(vertices, 2)))
                    for _ in range(6)
                }
            )
        )
        certificate = verify_reduction(MaxCutInstance(vertices, edges))
        assert certificate["matches"] == 1.0

    def test_cut_to_repair_requires_consistency(self):
        instance = MaxCutInstance(("a", "b"), (("a", "b"),))
        reduction = build_reduction(instance)
        # Any valid cut yields a consistent repair; cost formula checked.
        cost = cut_to_repair_cost(reduction, {"a"})
        assert cost == reduction.expected_ir(1)
