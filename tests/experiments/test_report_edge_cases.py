"""Additional edge cases for the reporting helpers."""

from repro.experiments.report import format_series, format_table, sparkline


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule only

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len(row.rstrip())

    def test_precision_respected(self):
        text = format_table(["v"], [[1.23456789]], precision=5)
        assert "1.23457" in text

    def test_mixed_types(self):
        text = format_table(["a", "b", "c"], [[1, "s", 2.5]])
        assert "1" in text and "s" in text and "2.500" in text


class TestFormatSeries:
    def test_single_point(self):
        text = format_series([0], {"m": [1.0]})
        assert "1.000" in text

    def test_subsample_includes_endpoints(self):
        text = format_series(list(range(50)), {"m": list(map(float, range(50)))})
        assert text.splitlines()[2].startswith("0")
        assert "49" in text

    def test_multiple_series_aligned(self):
        text = format_series([0, 1], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        header = text.splitlines()[0]
        assert "a" in header and "b" in header


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_negative_values(self):
        line = sparkline([-2.0, 0.0, 2.0])
        assert len(line) == 3
        assert line[0] == "▁"

    def test_single_value(self):
        assert sparkline([42.0]) == "▁"
