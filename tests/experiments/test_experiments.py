"""Tests for the experiment harnesses (behaviour, timing, scalability, Fig 3)."""

import math

import pytest

from repro.constraints import FunctionalDependency
from repro.datasets import generate_sample
from repro.experiments import (
    format_series,
    format_table,
    run_behavior_experiment,
    run_scalability_sweep,
    sparkline,
    summarize_all,
    summarize_dataset,
    time_measures,
    time_under_increasing_noise,
    violation_ratio,
)
from repro.measures import make_measures
from repro.noise import CONoise, RNoise
from repro.relational import Database, Schema


@pytest.fixture
def small_sample():
    return generate_sample("Airport", 80, seed=4)


class TestBehavior:
    def test_series_shape(self, small_sample):
        db, constraints = small_sample
        noise = CONoise(constraints, seed=1)
        measures = make_measures(["I_d", "I_MI", "I_lin_R"])
        result = run_behavior_experiment(
            db, constraints, noise, measures, iterations=10, measure_every=2
        )
        assert result.iterations == [0, 2, 4, 6, 8, 10]
        for name in ("I_d", "I_MI", "I_lin_R"):
            assert len(result.series[name]) == 6

    def test_starts_at_zero(self, small_sample):
        db, constraints = small_sample
        noise = CONoise(constraints, seed=1)
        result = run_behavior_experiment(
            db, constraints, noise, make_measures(["I_MI"]), iterations=5
        )
        assert result.series["I_MI"][0] == 0.0

    def test_drastic_is_step_function(self, small_sample):
        db, constraints = small_sample
        noise = CONoise(constraints, seed=2)
        result = run_behavior_experiment(
            db, constraints, noise, make_measures(["I_d"]), iterations=8
        )
        values = result.series["I_d"]
        assert set(values) <= {0.0, 1.0}
        assert values[-1] == 1.0

    def test_normalized_in_unit_range(self, small_sample):
        db, constraints = small_sample
        noise = RNoise(constraints, alpha=0.2, seed=3)
        result = run_behavior_experiment(
            db, constraints, noise, make_measures(["I_MI", "I_P"]), iterations=10
        )
        for series in result.normalized().values():
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_violation_ratio_bounds(self, small_sample):
        db, constraints = small_sample
        CONoise(constraints, seed=5).run(db, 10)
        ratio = violation_ratio(constraints, db)
        assert 0.0 <= ratio <= 1.0

    def test_violation_ratio_empty(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        db = Database(schema)
        assert violation_ratio([FunctionalDependency("R", {"A"}, {"B"})], db) == 0.0


class TestTiming:
    def test_time_measures_records_all(self, small_sample):
        db, constraints = small_sample
        CONoise(constraints, seed=6).run(db, 5)
        measures = make_measures(["I_d", "I_MI", "I_R", "I_lin_R"])
        row = time_measures(db, constraints, measures, dataset_name="Airport")
        assert set(row.seconds) == {"I_d", "I_MI", "I_R", "I_lin_R"}
        assert all(s >= 0 for s in row.seconds.values())
        assert row.values["I_MI"] >= 0

    def test_timeout_recorded(self, small_sample):
        db, constraints = small_sample
        CONoise(constraints, seed=6).run(db, 5)
        measures = make_measures(["I_MI"])
        row = time_measures(
            db, constraints, measures, timeout_seconds=0.0
        )
        assert "I_MI" in row.timed_out

    def test_error_rate_timing(self, small_sample):
        db, constraints = small_sample
        noise = RNoise(constraints, alpha=0.2, seed=7)
        result = time_under_increasing_noise(
            db,
            constraints,
            noise,
            make_measures(["I_d", "I_lin_R"]),
            iterations=6,
            measure_every=3,
        )
        assert result.iterations == [0, 3, 6]
        assert len(result.seconds["I_lin_R"]) == 3


class TestScalability:
    def test_sweep_and_exponent(self):
        measures = make_measures(["I_MI"])
        result = run_scalability_sweep(
            "Stock", sizes=[50, 100, 200], measures=measures
        )
        assert result.sizes == [50, 100, 200]
        assert len(result.seconds["I_MI"]) == 3
        exponent = result.growth_exponent("I_MI")
        assert math.isnan(exponent) or exponent > 0


class TestOverlap:
    def test_summary_fields(self):
        summary = summarize_dataset("Tax")
        assert summary.num_constraints == 9
        assert 0.0 <= summary.overlap_min <= summary.overlap_avg <= summary.overlap_max <= 1.0
        assert "State" in summary.example_constraint

    def test_all_eight(self):
        summaries = summarize_all()
        assert len(summaries) == 8


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.34567], ["x", 3]])
        assert "2.346" in text
        assert text.splitlines()[1].startswith("-")

    def test_format_series_subsamples(self):
        iterations = list(range(100))
        series = {"m": [float(i) for i in range(100)]}
        text = format_series(iterations, series, max_points=5)
        assert "99" in text  # last point always included

    def test_format_series_empty(self):
        assert "empty" in format_series([], {})

    def test_sparkline(self):
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([]) == ""
        assert sparkline([5, 5]) == "▁▁"
