"""Unit tests for functional dependencies and Armstrong closure."""

import pytest

from repro.constraints import (
    FunctionalDependency,
    attribute_closure,
    fd_entails,
    fd_set_entails,
    fd_sets_equivalent,
)


class TestFunctionalDependency:
    def test_str(self):
        fd = FunctionalDependency("R", {"A", "B"}, {"C"})
        assert str(fd) == "R: A B -> C"

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency("R", {"A"}, set())

    def test_empty_lhs_allowed(self):
        fd = FunctionalDependency("R", set(), {"A"})
        assert "∅" in str(fd)

    def test_trivial(self):
        assert FunctionalDependency("R", {"A", "B"}, {"A"}).is_trivial()
        assert not FunctionalDependency("R", {"A"}, {"B"}).is_trivial()

    def test_decompose(self):
        fd = FunctionalDependency("R", {"A"}, {"B", "C"})
        parts = fd.decompose()
        assert len(parts) == 2
        assert all(len(part.rhs) == 1 for part in parts)

    def test_equality_and_hash(self):
        fd1 = FunctionalDependency("R", {"A"}, {"B"})
        fd2 = FunctionalDependency("R", {"A"}, {"B"})
        assert fd1 == fd2
        assert len({fd1, fd2}) == 1

    def test_attributes_involved(self):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        assert fd.attributes_involved() == {("R", "A"), ("R", "B")}


class TestToDc:
    def test_single_rhs_to_dc(self):
        dc = FunctionalDependency("R", {"A"}, {"B"}).to_dc()
        assert dc.width == 2
        texts = [str(p) for p in dc.predicates]
        assert "t[A] = t2[A]" in texts
        assert "t[B] != t2[B]" in texts

    def test_multi_rhs_to_dc_raises(self):
        fd = FunctionalDependency("R", {"A"}, {"B", "C"})
        with pytest.raises(ValueError, match="multi-attribute"):
            fd.to_dc()

    def test_to_dcs_one_per_rhs_attribute(self):
        fd = FunctionalDependency("R", {"A"}, {"B", "C"})
        assert len(fd.to_dcs()) == 2


class TestClosure:
    def test_reflexivity(self):
        closure = attribute_closure({"A"}, [])
        assert closure == frozenset({"A"})

    def test_transitivity(self):
        fds = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
        ]
        assert attribute_closure({"A"}, fds) == frozenset({"A", "B", "C"})

    def test_relation_filter(self):
        fds = [FunctionalDependency("S", {"A"}, {"B"})]
        assert attribute_closure({"A"}, fds, relation="R") == frozenset({"A"})

    def test_composite_lhs(self):
        fds = [FunctionalDependency("R", {"A", "B"}, {"C"})]
        assert "C" not in attribute_closure({"A"}, fds)
        assert "C" in attribute_closure({"A", "B"}, fds)


class TestEntailment:
    def test_entails_transitive_fd(self):
        fds = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
        ]
        assert fd_entails(fds, FunctionalDependency("R", {"A"}, {"C"}))

    def test_does_not_entail_converse(self):
        fds = [FunctionalDependency("R", {"A"}, {"B"})]
        assert not fd_entails(fds, FunctionalDependency("R", {"B"}, {"A"}))

    def test_set_entailment(self):
        strong = [FunctionalDependency("R", {"A"}, {"B", "C"})]
        weak = [FunctionalDependency("R", {"A"}, {"B"})]
        assert fd_set_entails(strong, weak)
        assert not fd_set_entails(weak, strong)

    def test_equivalence_decomposed(self):
        composite = [FunctionalDependency("R", {"A"}, {"B", "C"})]
        split = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"A"}, {"C"}),
        ]
        assert fd_sets_equivalent(composite, split)

    def test_nonequivalence(self):
        assert not fd_sets_equivalent(
            [FunctionalDependency("R", {"A"}, {"B"})],
            [FunctionalDependency("R", {"B"}, {"C"})],
        )
