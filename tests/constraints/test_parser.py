"""Unit tests for the textual constraint parsers."""

import pytest

from repro.constraints import ComparisonOp, parse_dc, parse_fd
from repro.constraints.parser import ConstraintParseError


class TestParseDc:
    def test_two_tuple_dc(self):
        dc = parse_dc("not(t.State = t'.State, t.Rate < t'.Rate)", "Tax")
        assert dc.width == 2
        assert len(dc.predicates) == 2
        assert dc.predicates[1].op is ComparisonOp.LT

    def test_unary_dc(self):
        dc = parse_dc("not(t.High < t.Low)", "Stock")
        assert dc.width == 1

    def test_bracket_notation(self):
        dc = parse_dc("¬(t[Country] = t'[Country], t[Continent] != t'[Continent])", "A")
        assert dc.width == 2
        assert str(dc.predicates[0].left) == "t[Country]"

    def test_unicode_prime(self):
        dc = parse_dc("¬(t[A] = t′[A])", "R")
        assert dc.width == 2

    def test_forall_prefix_stripped(self):
        dc = parse_dc("forall t, t' not(t.A = t'.A)", "R")
        assert dc.width == 2

    def test_numeric_constant(self):
        dc = parse_dc("not(t.Score > 100)", "R")
        assert dc.predicates[0].right.constant == 100

    def test_float_constant(self):
        dc = parse_dc("not(t.Rate > 0.5)", "R")
        assert dc.predicates[0].right.constant == 0.5

    def test_string_constant(self):
        dc = parse_dc("not(t.Status = 'Active')", "R")
        assert dc.predicates[0].right.constant == "Active"

    def test_t2_alias(self):
        dc = parse_dc("not(t.A = t2.A)", "R")
        assert dc.width == 2

    def test_empty_body_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_dc("not()", "R")

    def test_missing_operator_rejected(self):
        with pytest.raises(ConstraintParseError, match="operator"):
            parse_dc("not(t.A t.B)", "R")

    def test_unknown_variable_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_dc("not(q.A = t.A)", "R")


class TestParseFd:
    def test_with_relation(self):
        fd = parse_fd("Airport: Municipality -> Continent Country")
        assert fd.relation == "Airport"
        assert fd.lhs == frozenset({"Municipality"})
        assert fd.rhs == frozenset({"Continent", "Country"})

    def test_without_relation_defaults(self):
        fd = parse_fd("A B -> C")
        assert fd.relation == "R"
        assert fd.lhs == frozenset({"A", "B"})

    def test_comma_separated_attributes(self):
        fd = parse_fd("R: A,B -> C")
        assert fd.lhs == frozenset({"A", "B"})

    def test_missing_arrow_rejected(self):
        with pytest.raises(ConstraintParseError, match="'->'"):
            parse_fd("R: A B C")

    def test_empty_rhs_rejected(self):
        with pytest.raises(ConstraintParseError, match="empty right"):
            parse_fd("R: A ->")
