"""Unit tests for constraint entailment and equivalence."""

from repro.constraints import (
    FunctionalDependency,
    entails,
    equivalent,
    find_entailment_counterexample,
    parse_dc,
)
from repro.relational import Database, Schema


class TestFdEntailment:
    def test_transitive(self):
        strong = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
        ]
        weak = [FunctionalDependency("R", {"A"}, {"C"})]
        assert entails(strong, weak)
        assert not entails(weak, strong)

    def test_equivalent_fd_sets(self):
        first = [FunctionalDependency("R", {"A"}, {"B", "C"})]
        second = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"A"}, {"C"}),
        ]
        assert equivalent(first, second)


class TestDcEntailment:
    def test_predicate_superset_entails(self):
        # Forbidding MORE specific patterns is weaker: ¬(A=A',B≠B') is
        # entailed by ¬(A=A') since every witness of the former matches the
        # latter's body... here: stronger body ⊆ weaker body.
        weaker = parse_dc("not(t.A = t'.A, t.B != t'.B)", "R")
        stronger = parse_dc("not(t.A = t'.A)", "R")
        assert entails([stronger], [weaker])
        assert not entails([weaker], [stronger])

    def test_self_entailment(self):
        dc = parse_dc("not(t.A = t'.A, t.B < t'.B)", "R")
        assert entails([dc], [dc])

    def test_unrelated_dcs_not_entailed(self):
        first = parse_dc("not(t.A > t.B)", "R")
        second = parse_dc("not(t.B > t.C)", "R")
        assert not entails([first], [second])

    def test_unary_entails_binary_weakening(self):
        stronger = parse_dc("not(t.A > 5)", "R")
        weaker = parse_dc("not(t.A > 5, t'.B > 0)", "R")
        assert entails([stronger], [weaker])


class TestCounterexampleSearch:
    def test_finds_refuting_database(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        claimed_stronger = [FunctionalDependency("R", {"A"}, {"B"})]
        claimed_weaker = [FunctionalDependency("R", {"B"}, {"A"})]
        candidates = [
            Database.from_rows(schema, "R", rows)
            for rows in ([(1, 2), (3, 2)], [(1, 2), (1, 3)])
        ]
        witness = find_entailment_counterexample(
            claimed_stronger, claimed_weaker, candidates
        )
        assert witness is not None
        # The witness satisfies A->B but violates B->A.
        assert witness.column("R", "B") == [2, 2]

    def test_no_counterexample_for_true_entailment(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        strong = [FunctionalDependency("R", {"A"}, {"B"})]
        weak = [FunctionalDependency("R", {"A"}, {"B"})]
        candidates = [Database.from_rows(schema, "R", [(1, 2), (1, 3)])]
        assert find_entailment_counterexample(strong, weak, candidates) is None
