"""Unit tests for denial constraints."""

import pytest

from repro.constraints import ComparisonOp, DenialConstraint, Predicate, Term
from repro.constraints.dc import binary_dc, unary_dc
from repro.relational import Fact, Schema


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B"]})


class TestConstruction:
    def test_needs_variable(self):
        with pytest.raises(ValueError):
            DenialConstraint([], [])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DenialConstraint([("t", "R"), ("t", "R")], [])

    def test_unbound_variable_rejected(self):
        pred = Predicate(Term.col("x", "A"), ComparisonOp.EQ, Term.col("t", "A"))
        with pytest.raises(ValueError, match="unbound"):
            DenialConstraint([("t", "R")], [pred])

    def test_equality_and_hash(self):
        dc1 = unary_dc("R", [("A", ">", "B")])
        dc2 = unary_dc("R", [("A", ">", "B")])
        assert dc1 == dc2
        assert hash(dc1) == hash(dc2)


class TestEvaluation:
    def test_unary_body(self, schema):
        dc = unary_dc("R", [("A", ">", "B")])
        assert dc.body_holds({"t": Fact("R", (2, 1))}, schema)
        assert not dc.body_holds({"t": Fact("R", (1, 2))}, schema)

    def test_constant_predicate(self, schema):
        dc = unary_dc("R", [("A", "=", Term.const(5))])
        assert dc.body_holds({"t": Fact("R", (5, 0))}, schema)
        assert not dc.body_holds({"t": Fact("R", (4, 0))}, schema)

    def test_binary_body(self, schema):
        dc = binary_dc("R", [("A", "=", "A", "tt'"), ("B", "!=", "B", "tt'")])
        f1, f2, f3 = Fact("R", (1, "x")), Fact("R", (1, "y")), Fact("R", (2, "x"))
        assert dc.body_holds({"t": f1, "t2": f2}, schema)
        assert not dc.body_holds({"t": f1, "t2": f3}, schema)

    def test_wrong_relation_fails_body(self):
        schema = Schema.from_dict({"R": ["A"], "S": ["A"]})
        dc = unary_dc("R", [("A", "=", Term.const(1))])
        assert not dc.body_holds({"t": Fact("S", (1,))}, schema)

    def test_witness_facts_dedupes(self, schema):
        dc = binary_dc("R", [("A", "=", "A", "tt'")])
        fact = Fact("R", (1, 2))
        assert len(dc.witness_facts({"t": fact, "t2": fact})) == 1


class TestStructure:
    def test_equality_join_predicates(self):
        dc = binary_dc(
            "R", [("A", "=", "A", "tt'"), ("B", "<", "B", "tt'"), ("A", "=", "B", "tt")]
        )
        joins = dc.equality_join_predicates()
        assert len(joins) == 1
        assert str(joins[0]) == "t[A] = t2[A]"

    def test_attributes_involved(self):
        dc = binary_dc("R", [("A", "=", "B", "tt'")])
        assert dc.attributes_involved() == {("R", "A"), ("R", "B")}

    def test_width(self):
        assert unary_dc("R", [("A", ">", "B")]).width == 1
        assert binary_dc("R", [("A", "=", "A", "tt'")]).width == 2

    def test_relations_used(self):
        dc = DenialConstraint(
            [("t", "R"), ("s", "S")],
            [Predicate(Term.col("t", "A"), ComparisonOp.EQ, Term.col("s", "A"))],
        )
        assert dc.relations_used() == {"R", "S"}

    def test_to_dc_identity(self):
        dc = unary_dc("R", [("A", ">", "B")])
        assert dc.to_dc() is dc

    def test_str_rendering(self):
        dc = unary_dc("R", [("A", ">", "B")], name="order")
        assert "not(" in str(dc)
        assert dc.name == "order"


class TestShorthands:
    def test_binary_dc_modes(self, schema):
        dc = binary_dc("R", [("A", "=", "B", "tt")])
        assert dc.body_holds(
            {"t": Fact("R", (1, 1)), "t2": Fact("R", (9, 9))}, schema
        )

    def test_binary_dc_bad_mode(self):
        with pytest.raises(ValueError, match="unknown predicate mode"):
            binary_dc("R", [("A", "=", "B", "xx")])

    def test_unary_dc_term_rhs(self, schema):
        dc = unary_dc("R", [("A", "=", Term.const("B"))])
        # The string "B" as a Term.const is a constant, not a column.
        assert dc.body_holds({"t": Fact("R", ("B", 0))}, schema)
        assert not dc.body_holds({"t": Fact("R", (0, "B"))}, schema)
