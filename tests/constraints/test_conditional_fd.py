"""Conditional FDs as denial constraints with constants.

The paper lists conditional FDs [Bohannon et al. 2007] among the
anti-monotonic constraint classes DCs generalize; these tests exercise the
constant-predicate machinery that encodes them.
"""

import pytest

from repro.constraints import ComparisonOp, DenialConstraint, Predicate, Term
from repro.measures import make_measure
from repro.relational import Database, Schema
from repro.violations import build_violation_index


@pytest.fixture
def schema():
    return Schema.from_dict({"Cust": ["Country", "AreaCode", "City"]})


def conditional_fd(schema) -> DenialConstraint:
    """CFD: within Country='US', AreaCode -> City."""
    return DenialConstraint(
        [("t", "Cust"), ("t2", "Cust")],
        [
            Predicate(Term.col("t", "Country"), ComparisonOp.EQ, Term.const("US")),
            Predicate(Term.col("t2", "Country"), ComparisonOp.EQ, Term.const("US")),
            Predicate(
                Term.col("t", "AreaCode"), ComparisonOp.EQ, Term.col("t2", "AreaCode")
            ),
            Predicate(Term.col("t", "City"), ComparisonOp.NE, Term.col("t2", "City")),
        ],
        name="cfd_us_areacode_city",
    )


class TestConditionalFd:
    def test_violation_only_inside_condition(self, schema):
        cfd = conditional_fd(schema)
        db = Database.from_rows(
            schema,
            "Cust",
            [
                ("US", 212, "NYC"),
                ("US", 212, "Albany"),   # violates within US
                ("UK", 20, "London"),
                ("UK", 20, "Leeds"),     # same pattern, outside condition
            ],
        )
        index = build_violation_index([cfd], db)
        assert index.mi_sets == [frozenset({0, 1})]

    def test_consistent_when_condition_empty(self, schema):
        cfd = conditional_fd(schema)
        db = Database.from_rows(
            schema, "Cust", [("UK", 20, "London"), ("UK", 20, "Leeds")]
        )
        assert build_violation_index([cfd], db).is_consistent()

    def test_measures_work_on_cfds(self, schema):
        cfd = conditional_fd(schema)
        db = Database.from_rows(
            schema,
            "Cust",
            [("US", 212, "NYC"), ("US", 212, "Albany"), ("US", 415, "SF")],
        )
        assert make_measure("I_MI").value([cfd], db) == 1.0
        assert make_measure("I_R").value([cfd], db) == 1.0
        assert make_measure("I_lin_R").value([cfd], db) == 1.0

    def test_constant_condition_in_sql(self, schema):
        from repro.violations import conflict_sql

        sql = conflict_sql(conditional_fd(schema))
        assert "= 'US'" in sql
