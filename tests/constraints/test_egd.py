"""Unit tests for EGDs and the Theorem 1 shape probes."""

import pytest

from repro.constraints import Atom, EqualityGeneratingDependency, example8_egds
from repro.relational import Database, Fact, Schema
from repro.violations import is_consistent


class TestConstruction:
    def test_needs_atom(self):
        with pytest.raises(ValueError):
            EqualityGeneratingDependency([], "x", "y")

    def test_conclusion_must_occur(self):
        atom = Atom("R", ("x", "y"))
        with pytest.raises(ValueError, match="does not occur"):
            EqualityGeneratingDependency([atom], "x", "z")

    def test_trivial_conclusion_rejected(self):
        atom = Atom("R", ("x", "y"))
        with pytest.raises(ValueError, match="trivial"):
            EqualityGeneratingDependency([atom], "x", "x")

    def test_equality_symmetric_in_conclusion(self):
        atom = Atom("R", ("x", "y"))
        first = EqualityGeneratingDependency([atom], "x", "y")
        second = EqualityGeneratingDependency([atom], "y", "x")
        assert first == second


class TestTheorem1Shapes:
    def test_example8_classification(self):
        egds = example8_egds()
        assert not egds["sigma1"].is_hard_path_shape()  # FD
        assert egds["sigma2"].is_hard_path_shape()
        assert egds["sigma3"].is_hard_path_shape()
        assert not egds["sigma4"].is_hard_path_shape()  # two relations

    def test_path_shape_requires_same_relation(self):
        egd = EqualityGeneratingDependency(
            [Atom("R", ("x", "y")), Atom("S", ("y", "z"))], "x", "z"
        )
        assert not egd.is_hard_path_shape()

    def test_path_shape_atom_order_irrelevant(self):
        egd = EqualityGeneratingDependency(
            [Atom("R", ("y", "z")), Atom("R", ("x", "y"))], "x", "z"
        )
        assert egd.is_hard_path_shape()

    def test_two_binary_atoms_probe(self):
        ternary = EqualityGeneratingDependency(
            [Atom("R", ("x", "y", "z"))], "x", "y"
        )
        assert not ternary.has_two_binary_atoms()
        assert example8_egds()["sigma1"].has_two_binary_atoms()


class TestLowering:
    def test_fd_shaped_egd_matches_semantics(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        egd = example8_egds()["sigma1"]  # R(x,y), R(x,z) -> y = z, i.e. A -> B
        egd.bind_schema(schema)
        consistent = Database.from_rows(schema, "R", [(1, 2), (1, 2), (3, 4)])
        violated = Database.from_rows(schema, "R", [(1, 2), (1, 3)])
        assert is_consistent([egd], consistent)
        assert not is_consistent([egd], violated)

    def test_path_egd_semantics(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        egd = example8_egds()["sigma2"]  # R(x,y), R(y,z) -> x = z
        egd.bind_schema(schema)
        two_cycle = Database.from_rows(schema, "R", [(1, 2), (2, 1)])
        path = Database.from_rows(schema, "R", [(1, 2), (2, 3)])
        assert is_consistent([egd], two_cycle)
        assert not is_consistent([egd], path)

    def test_self_path_violation(self):
        # R(a, a) chains with itself: x=a, y=a, z=a satisfies x=z, so a
        # single loop fact is fine; R(a,b),R(b,b) is a path a->b->b.
        schema = Schema.from_dict({"R": ["A", "B"]})
        egd = example8_egds()["sigma2"]
        egd.bind_schema(schema)
        loop = Database.from_rows(schema, "R", [(5, 5)])
        assert is_consistent([egd], loop)
        chain = Database.from_rows(schema, "R", [(1, 2), (2, 2)])
        assert not is_consistent([egd], chain)

    def test_cross_relation_lowering(self):
        schema = Schema.from_dict({"R": ["A", "B"], "S": ["A", "B"]})
        egd = example8_egds()["sigma4"]  # R(x,y), S(y,z) -> x = z
        egd.bind_schema(schema)
        good = Database.from_facts(
            schema, [Fact("R", (1, 2)), Fact("S", (2, 1))]
        )
        bad = Database.from_facts(
            schema, [Fact("R", (1, 2)), Fact("S", (2, 3))]
        )
        assert is_consistent([egd], good)
        assert not is_consistent([egd], bad)

    def test_attributes_involved_with_schema(self):
        schema = Schema.from_dict({"R": ["A", "B"]})
        egd = example8_egds()["sigma1"]
        egd.bind_schema(schema)
        assert egd.attributes_involved() == {("R", "A"), ("R", "B")}
