"""Unit tests for comparison operators and constraint-system helpers."""

import pytest

from repro.constraints import (
    ComparisonOp,
    ConstraintSystem,
    FunctionalDependency,
    classify,
    example8_egds,
    overlap_ratios,
    parse_dc,
)


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (ComparisonOp.EQ, 1, 1, True),
            (ComparisonOp.EQ, 1, 2, False),
            (ComparisonOp.NE, "a", "b", True),
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 2, 3, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected

    def test_null_comparisons_false(self):
        for op in ComparisonOp:
            assert op.evaluate(None, 1) is False

    def test_incomparable_types_false(self):
        assert ComparisonOp.LT.evaluate("a", 1) is False

    def test_mixed_numerics_comparable(self):
        assert ComparisonOp.LT.evaluate(1, 1.5) is True

    def test_negation_involution(self):
        for op in ComparisonOp:
            assert op.negated().negated() is op

    def test_flip_swaps_operands(self):
        for op in ComparisonOp:
            assert op.flipped().evaluate(2, 1) == op.evaluate(1, 2)

    def test_parse_aliases(self):
        assert ComparisonOp.parse("<>") is ComparisonOp.NE
        assert ComparisonOp.parse("==") is ComparisonOp.EQ
        assert ComparisonOp.parse("≥") is ComparisonOp.GE

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            ComparisonOp.parse("~~")


class TestClassify:
    def test_fds_classified_narrow(self):
        fds = [FunctionalDependency("R", {"A"}, {"B"})]
        assert classify(fds) is ConstraintSystem.FD

    def test_egd_widens(self):
        egd = example8_egds()["sigma2"]
        fds = [FunctionalDependency("R", {"A"}, {"B"})]
        assert classify(fds + [egd]) is ConstraintSystem.EGD

    def test_dc_widest(self):
        dc = parse_dc("not(t.A > t.B)", "R")
        assert classify([dc]) is ConstraintSystem.DC


class TestOverlap:
    def test_disjoint_constraints(self):
        constraints = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"C"}, {"D"}),
        ]
        assert overlap_ratios(constraints) == [0.0, 0.0]

    def test_full_overlap(self):
        constraints = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"A"}),
        ]
        assert overlap_ratios(constraints) == [1.0, 1.0]

    def test_single_constraint(self):
        assert overlap_ratios([FunctionalDependency("R", {"A"}, {"B"})]) == [0.0]

    def test_partial_overlap(self):
        constraints = [
            FunctionalDependency("R", {"A"}, {"B"}),
            FunctionalDependency("R", {"B"}, {"C"}),
            FunctionalDependency("R", {"X"}, {"Y"}),
        ]
        ratios = overlap_ratios(constraints)
        assert ratios == [0.5, 0.5, 0.0]
