"""Tests for the MiniHoloClean cleaner and the incremental pipeline."""

import pytest

from repro.cleaning import MiniHoloClean, run_incremental_pipeline
from repro.constraints import FunctionalDependency
from repro.datasets import generate_sample
from repro.measures import make_measures
from repro.noise import RNoise
from repro.relational import Database, Schema
from repro.violations import build_violation_index, is_consistent


@pytest.fixture
def fd_db():
    schema = Schema.from_dict({"R": ["Key", "Val", "Other"]})
    rows = [(k, f"v{k}", 0) for k in range(5) for _ in range(6)]
    return Database.from_rows(schema, "R", rows), [
        FunctionalDependency("R", {"Key"}, {"Val"})
    ]


class TestMiniHoloClean:
    def test_clean_database_untouched(self, fd_db):
        db, constraints = fd_db
        report = MiniHoloClean(constraints).clean(db)
        assert report.cells_repaired == 0
        assert report.violations_before == 0

    def test_majority_repair(self, fd_db):
        db, constraints = fd_db
        # Corrupt one cell: group 0 has 5 copies of 'v0' and one 'WRONG'.
        db.update(0, "Val", "WRONG")
        report = MiniHoloClean(constraints).clean(db)
        assert report.violations_before > 0
        assert report.violations_after == 0
        assert db.get_cell(0, "Val") == "v0"

    def test_reduces_violations_on_noisy_sample(self):
        db, constraints = generate_sample("Hospital", 120, seed=5)
        RNoise(constraints, alpha=0.02, seed=6).run(db)
        before = len(build_violation_index(constraints, db).mi_sets)
        report = MiniHoloClean(constraints).clean(db)
        assert report.violations_before == before
        assert report.violations_after < before

    def test_report_counts(self, fd_db):
        db, constraints = fd_db
        db.update(0, "Val", "WRONG")
        report = MiniHoloClean(constraints).clean(db)
        assert report.cells_examined > 0
        assert report.cells_repaired >= 1


class TestPipeline:
    def test_series_lengths(self, fd_db):
        db, constraints = fd_db
        db.update(0, "Val", "WRONG")
        measures = make_measures(["I_d", "I_MI"])
        result = run_incremental_pipeline(db, constraints, measures)
        # One point for the dirty db plus one per constraint step.
        assert len(result.series["I_MI"]) == len(constraints) + 1
        assert len(result.reports) == len(constraints)

    def test_input_not_mutated(self, fd_db):
        db, constraints = fd_db
        db.update(0, "Val", "WRONG")
        snapshot = db.copy()
        run_incremental_pipeline(db, constraints, make_measures(["I_MI"]))
        assert db == snapshot

    def test_inconsistency_decays(self):
        db, constraints = generate_sample("Hospital", 100, seed=8)
        RNoise(constraints, alpha=0.03, seed=9).run(db)
        measures = make_measures(["I_MI", "I_lin_R"])
        result = run_incremental_pipeline(db, constraints, measures, seed=0)
        series = result.series["I_lin_R"]
        assert series[-1] <= series[0]
        assert series[0] > 0

    def test_permutation_validation(self, fd_db):
        db, constraints = fd_db
        with pytest.raises(ValueError, match="permutation"):
            run_incremental_pipeline(
                db, constraints, make_measures(["I_d"]), permutation=[5]
            )

    def test_normalized_series(self, fd_db):
        db, constraints = fd_db
        db.update(0, "Val", "WRONG")
        result = run_incremental_pipeline(db, constraints, make_measures(["I_MI"]))
        normalized = result.normalized()["I_MI"]
        assert max(normalized) <= 1.0
