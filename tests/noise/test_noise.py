"""Tests for the CONoise and RNoise generators and typo maker."""

import random

import pytest

from repro.constraints import FunctionalDependency, parse_dc
from repro.noise import CONoise, RNoise, make_typo
from repro.relational import Database, Schema
from repro.violations import build_violation_index, is_consistent


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B", "C"]})


@pytest.fixture
def consistent_db(schema):
    return Database.from_rows(
        schema,
        "R",
        [(group, f"val{group}", group * 10) for group in range(8) for _ in range(4)],
    )


class TestTypos:
    def test_string_typo_differs(self):
        rng = random.Random(0)
        for _ in range(50):
            assert make_typo("Key West", rng) != "Key West"

    def test_int_typo_differs(self):
        rng = random.Random(1)
        for _ in range(50):
            value = make_typo(42, rng)
            assert value != 42
            assert isinstance(value, int)

    def test_float_typo_differs(self):
        rng = random.Random(2)
        for _ in range(50):
            assert make_typo(2.5, rng) != 2.5

    def test_empty_string(self):
        rng = random.Random(3)
        assert make_typo("", rng) != ""

    def test_bool_flips(self):
        rng = random.Random(4)
        assert make_typo(True, rng) is False


class TestCONoise:
    def test_introduces_violations(self, consistent_db):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        assert is_consistent([fd], consistent_db)
        noise = CONoise([fd], seed=7)
        noise.run(consistent_db, 5)
        assert not is_consistent([fd], consistent_db)

    def test_deterministic_under_seed(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        results = []
        for _ in range(2):
            db = Database.from_rows(
                schema, "R", [(g, f"v{g}", 0) for g in range(6) for _ in range(3)]
            )
            CONoise([fd], seed=123).run(db, 10)
            results.append([db[i] for i in db.ids()])
        assert results[0] == results[1]

    def test_unary_inequality_dc(self, schema):
        dc = parse_dc("not(t.A > t.C)", "R")
        db = Database.from_rows(schema, "R", [(1, "x", 100), (2, "y", 100)])
        noise = CONoise([dc], seed=11)
        noise.run(db, 20)
        index = build_violation_index([dc], db)
        assert index.mi_sets  # at least one violation forced

    def test_empty_database_noop(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        db = Database(schema)
        CONoise([fd], seed=1).run(db, 3)
        assert len(db) == 0


class TestRNoise:
    def test_parameter_validation(self):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        with pytest.raises(ValueError):
            RNoise([fd], alpha=0.0)
        with pytest.raises(ValueError):
            RNoise([fd], beta=-1)
        with pytest.raises(ValueError):
            RNoise([fd], typo_probability=2.0)

    def test_total_iterations_scales_with_alpha(self, consistent_db):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        small = RNoise([fd], alpha=0.01).total_iterations(consistent_db)
        large = RNoise([fd], alpha=0.1).total_iterations(consistent_db)
        assert large > small

    def test_only_constrained_attributes_touched(self, consistent_db):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        before_c = consistent_db.column("R", "C")
        noise = RNoise([fd], alpha=0.5, seed=3)
        noise.run(consistent_db)
        assert consistent_db.column("R", "C") == before_c

    def test_modifies_cells(self, consistent_db):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        before = [consistent_db[i] for i in consistent_db.ids()]
        RNoise([fd], alpha=0.5, seed=3).run(consistent_db)
        after = [consistent_db[i] for i in consistent_db.ids()]
        assert before != after

    def test_zipf_skew_prefers_frequent(self, schema):
        # With huge beta, the replacement sampler concentrates on the most
        # frequent value of the column (other than the current one).
        fd = FunctionalDependency("R", {"A"}, {"B"})
        rows = [(1, "common", 0)] * 30 + [(2, "rare%d" % i, 0) for i in range(5)]
        db = Database.from_rows(schema, "R", rows)
        noise = RNoise([fd], alpha=0.9, beta=8.0, typo_probability=0.0, seed=9)
        samples = [
            noise._zipf_value(db, "R", "B", "rare0") for _ in range(60)
        ]
        assert samples.count("common") >= 55

    def test_beta_zero_is_uniform_choice(self, schema):
        fd = FunctionalDependency("R", {"A"}, {"B"})
        rows = [(1, "a", 0)] * 10 + [(1, "b", 0), (1, "c", 0)]
        db = Database.from_rows(schema, "R", rows)
        noise = RNoise([fd], alpha=0.5, beta=0.0, typo_probability=0.0, seed=2)
        samples = {noise._zipf_value(db, "R", "B", "a") for _ in range(80)}
        assert samples == {"b", "c"}
